"""The end-to-end GRED pipeline."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.annotator import DatabaseAnnotator
from repro.core.config import GREDConfig
from repro.core.debugger import AnnotationBasedDebugger
from repro.core.generator import NLQRetrievalGenerator
from repro.core.retriever import GREDRetriever
from repro.core.retuner import DVQRetrievalRetuner
from repro.database.catalog import Catalog
from repro.database.database import Database
from repro.dvq.normalize import try_parse
from repro.executor.backend import ExecutionBackend, resolve_backend
from repro.llm.interface import ChatModel
from repro.llm.simulated import SimulatedChatModel
from repro.models.base import TextToVisModel
from repro.nvbench.example import NVBenchExample
from repro.runtime.cache import LLMCache
from repro.runtime.runner import BatchReport, BatchRunner


@dataclass
class GREDTrace:
    """Intermediate outputs of one GRED prediction (for analysis and the case study).

    ``timings`` maps stage name (``generate`` / ``retune`` / ``debug`` /
    ``verify``) to its wall-clock seconds; it is excluded from equality so
    that traces produced by the serial and batched paths compare identical.
    ``executes`` is populated only with
    :attr:`~repro.core.config.GREDConfig.verify_execution`: ``True`` when the
    final DVQ parses and materialises against the target database on the
    configured execution backend, ``False`` when it does not (the "no chart"
    outcome), ``None`` when verification is off.
    """

    nlq: str
    dvq_gen: str
    dvq_rtn: str
    dvq_dbg: str
    timings: Dict[str, float] = field(default_factory=dict, compare=False, repr=False)
    executes: Optional[bool] = field(default=None, compare=False)

    @property
    def final(self) -> str:
        return self.dvq_dbg


class GRED(TextToVisModel):
    """GRED as a drop-in text-to-vis model.

    The pipeline runs three LLM stages per question — *generate* (NLQ
    retrieval), *retune* (DVQ retrieval) and *debug* (annotation-based column
    repair) — over an embedding library built in :meth:`fit`.  Inference is
    available per-question (:meth:`predict` / :meth:`trace`) or batched
    through a :class:`~repro.runtime.runner.BatchRunner`
    (:meth:`predict_batch` / :meth:`trace_batch`); with
    ``config.use_llm_cache`` the chat model is wrapped in an
    :class:`~repro.runtime.cache.LLMCache` so repeated prompts (shared
    database annotations, duplicated variant questions) are answered from
    memory.
    """

    name = "GRED"

    def __init__(self, config: GREDConfig = GREDConfig(), llm: Optional[ChatModel] = None):
        self.config = config
        self.name = config.variant_name()
        base_llm = llm or SimulatedChatModel()
        if config.use_llm_cache:
            base_llm = LLMCache(base_llm, max_entries=config.llm_cache_max_entries)
        self.llm = base_llm
        self.retriever = GREDRetriever(dimensions=config.embedder_dimensions)
        self.annotator = DatabaseAnnotator(self.llm, params=config.preparation_params)
        self.generator: Optional[NLQRetrievalGenerator] = None
        self.retuner: Optional[DVQRetrievalRetuner] = None
        self.debugger: Optional[AnnotationBasedDebugger] = None
        self.execution_backend: Optional[ExecutionBackend] = (
            resolve_backend(config.execution_backend) if config.verify_execution else None
        )
        self._fitted = False

    @property
    def llm_cache(self) -> Optional[LLMCache]:
        """The interposed completion cache, if ``config.use_llm_cache`` is set."""
        return self.llm if isinstance(self.llm, LLMCache) else None

    # -- preparation ------------------------------------------------------------

    def fit(self, examples: Sequence[NVBenchExample], catalog: Catalog) -> "GRED":
        """Preparatory phase: build the embedding library and wire up the stages."""
        self.retriever.prepare(examples, max_examples=self.config.max_library_examples)
        self.generator = NLQRetrievalGenerator(
            retriever=self.retriever,
            llm=self.llm,
            catalog=catalog,
            top_k=self.config.top_k,
            params=self.config.pipeline_params,
        )
        self.retuner = DVQRetrievalRetuner(
            retriever=self.retriever,
            llm=self.llm,
            top_k=self.config.top_k,
            params=self.config.pipeline_params,
        )
        self.debugger = AnnotationBasedDebugger(
            annotator=self.annotator,
            llm=self.llm,
            params=self.config.pipeline_params,
        )
        self._fitted = True
        return self

    # -- inference -----------------------------------------------------------------

    def trace(self, nlq: str, database: Database) -> GREDTrace:
        """Run the pipeline and keep every intermediate DVQ plus stage timings."""
        if not self._fitted or self.generator is None:
            raise RuntimeError("GRED.predict called before fit")
        timings: Dict[str, float] = {}
        started = time.perf_counter()
        dvq_gen = self.generator.generate(nlq, database)
        timings["generate"] = time.perf_counter() - started
        dvq_rtn = dvq_gen
        if self.config.use_retuner and self.retuner is not None and dvq_gen:
            started = time.perf_counter()
            dvq_rtn = self.retuner.retune(dvq_gen)
            timings["retune"] = time.perf_counter() - started
        dvq_dbg = dvq_rtn
        if self.config.use_debugger and self.debugger is not None and dvq_rtn:
            started = time.perf_counter()
            dvq_dbg = self.debugger.debug(dvq_rtn, database)
            timings["debug"] = time.perf_counter() - started
        executes: Optional[bool] = None
        if self.execution_backend is not None:
            started = time.perf_counter()
            parsed = try_parse(dvq_dbg)
            executes = parsed is not None and self.execution_backend.can_execute(
                parsed, database
            )
            timings["verify"] = time.perf_counter() - started
        return GREDTrace(
            nlq=nlq,
            dvq_gen=dvq_gen,
            dvq_rtn=dvq_rtn,
            dvq_dbg=dvq_dbg,
            timings=timings,
            executes=executes,
        )

    def predict(self, nlq: str, database: Database) -> str:
        return self.trace(nlq, database).final

    def trace_batch(
        self,
        examples: Sequence[NVBenchExample],
        catalog: Catalog,
        runner: Optional[BatchRunner] = None,
    ) -> BatchReport:
        """Run :meth:`trace` over a dataset through a batch runner.

        Returns the full :class:`~repro.runtime.runner.BatchReport`, which
        preserves input order, isolates per-example failures and carries
        per-example timings.  Without an explicit ``runner`` a serial
        (``max_workers=1``) runner is used, making the result bit-identical to
        looping over :meth:`trace`.
        """
        runner = runner or BatchRunner(max_workers=1)
        return runner.run(
            list(examples),
            lambda example: self.trace(example.nlq, catalog.get(example.db_id)),
        )

    def predict_batch(
        self,
        examples: Sequence[NVBenchExample],
        catalog: Catalog,
        runner: Optional[BatchRunner] = None,
    ) -> List[GREDTrace]:
        """Traces for a list of examples (used by the experiment harness).

        Routes through :meth:`trace_batch`; pass a
        :class:`~repro.runtime.runner.BatchRunner` with ``max_workers > 1`` to
        overlap LLM latency across examples.  Raises
        :class:`~repro.runtime.runner.BatchFailure` if any example fails —
        callers wanting failure isolation should use :meth:`trace_batch` and
        inspect the report.
        """
        return self.trace_batch(examples, catalog, runner=runner).values(strict=True)
