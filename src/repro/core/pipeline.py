"""The end-to-end GRED pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.annotator import DatabaseAnnotator
from repro.core.config import GREDConfig
from repro.core.debugger import AnnotationBasedDebugger
from repro.core.generator import NLQRetrievalGenerator
from repro.core.retriever import GREDRetriever
from repro.core.retuner import DVQRetrievalRetuner
from repro.database.catalog import Catalog
from repro.database.database import Database
from repro.llm.interface import ChatModel
from repro.llm.simulated import SimulatedChatModel
from repro.models.base import TextToVisModel
from repro.nvbench.example import NVBenchExample


@dataclass
class GREDTrace:
    """Intermediate outputs of one GRED prediction (for analysis and the case study)."""

    nlq: str
    dvq_gen: str
    dvq_rtn: str
    dvq_dbg: str

    @property
    def final(self) -> str:
        return self.dvq_dbg


class GRED(TextToVisModel):
    """GRED as a drop-in text-to-vis model."""

    name = "GRED"

    def __init__(self, config: GREDConfig = GREDConfig(), llm: Optional[ChatModel] = None):
        self.config = config
        self.name = config.variant_name()
        self.llm = llm or SimulatedChatModel()
        self.retriever = GREDRetriever(dimensions=config.embedder_dimensions)
        self.annotator = DatabaseAnnotator(self.llm, params=config.preparation_params)
        self.generator: Optional[NLQRetrievalGenerator] = None
        self.retuner: Optional[DVQRetrievalRetuner] = None
        self.debugger: Optional[AnnotationBasedDebugger] = None
        self._fitted = False

    # -- preparation ------------------------------------------------------------

    def fit(self, examples: Sequence[NVBenchExample], catalog: Catalog) -> "GRED":
        """Preparatory phase: build the embedding library and wire up the stages."""
        self.retriever.prepare(examples, max_examples=self.config.max_library_examples)
        self.generator = NLQRetrievalGenerator(
            retriever=self.retriever,
            llm=self.llm,
            catalog=catalog,
            top_k=self.config.top_k,
            params=self.config.pipeline_params,
        )
        self.retuner = DVQRetrievalRetuner(
            retriever=self.retriever,
            llm=self.llm,
            top_k=self.config.top_k,
            params=self.config.pipeline_params,
        )
        self.debugger = AnnotationBasedDebugger(
            annotator=self.annotator,
            llm=self.llm,
            params=self.config.pipeline_params,
        )
        self._fitted = True
        return self

    # -- inference -----------------------------------------------------------------

    def trace(self, nlq: str, database: Database) -> GREDTrace:
        """Run the pipeline and keep every intermediate DVQ."""
        if not self._fitted or self.generator is None:
            raise RuntimeError("GRED.predict called before fit")
        dvq_gen = self.generator.generate(nlq, database)
        dvq_rtn = dvq_gen
        if self.config.use_retuner and self.retuner is not None and dvq_gen:
            dvq_rtn = self.retuner.retune(dvq_gen)
        dvq_dbg = dvq_rtn
        if self.config.use_debugger and self.debugger is not None and dvq_rtn:
            dvq_dbg = self.debugger.debug(dvq_rtn, database)
        return GREDTrace(nlq=nlq, dvq_gen=dvq_gen, dvq_rtn=dvq_rtn, dvq_dbg=dvq_dbg)

    def predict(self, nlq: str, database: Database) -> str:
        return self.trace(nlq, database).final

    def predict_batch(self, examples: Sequence[NVBenchExample], catalog: Catalog) -> List[GREDTrace]:
        """Traces for a list of examples (used by the experiment harness)."""
        return [self.trace(example.nlq, catalog.get(example.db_id)) for example in examples]
