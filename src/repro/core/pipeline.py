"""The end-to-end GRED pipeline, executed as a declarative stage plan."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.annotator import DatabaseAnnotator
from repro.core.config import GREDConfig
from repro.core.debugger import AnnotationBasedDebugger
from repro.core.errors import NotFittedError, not_fitted
from repro.core.generator import NLQRetrievalGenerator
from repro.core.retriever import GREDRetriever
from repro.core.retuner import DVQRetrievalRetuner
from repro.database.catalog import Catalog
from repro.database.database import Database
from repro.executor.backend import ExecutionBackend, resolve_backend
from repro.llm.interface import ChatModel
from repro.llm.simulated import SimulatedChatModel
from repro.models.base import TextToVisModel
from repro.nvbench.example import NVBenchExample
from repro.pipeline.context import StageContext, StageRecord
from repro.pipeline.plan import StagePlan, build_stage_plan
from repro.pipeline.stages import DEBUG, GENERATE, REPAIR, RETUNE
from repro.runtime.cache import LLMCache
from repro.runtime.runner import BatchReport, BatchRunner

__all__ = ["GRED", "GREDTrace", "RepairStats", "NotFittedError"]


@dataclass
class GREDTrace:
    """Intermediate outputs of one GRED prediction (for analysis and the case study).

    Generalised from the historical fixed triple to the full per-stage
    artifact history: ``records`` holds one
    :class:`~repro.pipeline.context.StageRecord` per stage the plan ran, in
    order.  The classic accessors — :attr:`dvq_gen`, :attr:`dvq_rtn`,
    :attr:`dvq_dbg`, :attr:`final` — remain as derived properties, so code
    written against the three-stage trace keeps working against any plan.

    ``timings`` maps stage name (``generate`` / ``retune`` / ``debug`` /
    ``repair`` / ``verify``) to its wall-clock seconds; it is excluded from
    equality so that traces produced by the serial and batched paths compare
    identical.  ``executes`` is populated whenever an execution-aware stage
    ran (``verify_execution`` or ``max_repair_rounds > 0``): ``True`` when
    the final DVQ parses and materialises against the target database on the
    configured execution backend, ``False`` when it does not (the "no chart"
    outcome), ``None`` when no execution check ran.  ``repair_rounds`` counts
    the LLM repair rounds the execution-guided repair loop spent on this
    prediction.
    """

    nlq: str
    records: List[StageRecord] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict, compare=False, repr=False)
    executes: Optional[bool] = field(default=None, compare=False)
    repair_rounds: int = field(default=0, compare=False)

    @classmethod
    def from_context(cls, context: StageContext) -> "GREDTrace":
        return cls(
            nlq=context.nlq,
            records=list(context.records),
            timings=dict(context.timings),
            executes=context.executes,
            repair_rounds=context.repair_rounds,
        )

    def dvq_after(self, stage: str) -> Optional[str]:
        """The candidate left by the last run of ``stage`` (None if it never ran)."""
        for record in reversed(self.records):
            if record.stage == stage:
                return record.dvq
        return None

    @property
    def final(self) -> str:
        """The DVQ the pipeline ultimately produced (after every stage)."""
        return self.records[-1].dvq if self.records else ""

    @property
    def dvq_gen(self) -> str:
        return self.dvq_after(GENERATE) or ""

    @property
    def dvq_rtn(self) -> str:
        dvq = self.dvq_after(RETUNE)
        return dvq if dvq is not None else self.dvq_gen

    @property
    def dvq_dbg(self) -> str:
        dvq = self.dvq_after(DEBUG)
        return dvq if dvq is not None else self.dvq_rtn

    @property
    def dvq_repaired(self) -> Optional[str]:
        """The candidate after the repair loop (None when it never ran)."""
        return self.dvq_after(REPAIR)


@dataclass
class RepairStats:
    """Aggregate effect of the execution-guided repair loop across traces.

    ``attempted`` counts traces whose candidate initially failed to execute
    (i.e. the loop had something to do); ``repaired`` counts how many of
    those ended up executing; ``rounds_total`` sums the LLM repair rounds
    spent.  :class:`~repro.evaluation.evaluator.ModelEvaluator` snapshots
    these counters around a run to report per-run repair effectiveness.
    """

    attempted: int = 0
    repaired: int = 0
    rounds_total: int = 0

    @property
    def repair_rate(self) -> float:
        """Fraction of initially-failing candidates the loop rescued."""
        return self.repaired / self.attempted if self.attempted else 0.0

    def observe(self, summary: Dict[str, object]) -> None:
        """Fold one trace's ``meta["repair"]`` summary into the counters."""
        if summary.get("initially_ok"):
            return
        self.attempted += 1
        self.rounds_total += int(summary.get("rounds", 0))
        if summary.get("final_ok"):
            self.repaired += 1

    def snapshot(self) -> "RepairStats":
        return RepairStats(self.attempted, self.repaired, self.rounds_total)

    def since(self, earlier: "RepairStats") -> "RepairStats":
        return RepairStats(
            attempted=self.attempted - earlier.attempted,
            repaired=self.repaired - earlier.repaired,
            rounds_total=self.rounds_total - earlier.rounds_total,
        )


class GRED(TextToVisModel):
    """GRED as a drop-in text-to-vis model.

    The pipeline is a declarative :class:`~repro.pipeline.plan.StagePlan`
    built from the configuration in :meth:`fit`: *generate* (NLQ retrieval),
    *retune* (DVQ retrieval) and *debug* (annotation-based column repair)
    stages over an embedding library, optionally followed by the
    execution-guided repair loop (``config.max_repair_rounds``) and the
    execution check (``config.verify_execution``).  Ablations and custom
    experiments are plan edits — see :attr:`plan` — not pipeline subclasses.
    Inference is available per-question (:meth:`predict` / :meth:`trace`) or
    batched through a :class:`~repro.runtime.runner.BatchRunner`
    (:meth:`predict_batch` / :meth:`trace_batch`); with
    ``config.use_llm_cache`` the chat model is wrapped in an
    :class:`~repro.runtime.cache.LLMCache` so repeated prompts (shared
    database annotations, duplicated variant questions) are answered from
    memory.
    """

    name = "GRED"

    def __init__(self, config: GREDConfig = GREDConfig(), llm: Optional[ChatModel] = None):
        self.config = config
        self.name = config.variant_name()
        base_llm = llm or SimulatedChatModel()
        if config.use_llm_cache:
            base_llm = LLMCache(base_llm, max_entries=config.llm_cache_max_entries)
        self.llm = base_llm
        self.retriever = GREDRetriever(
            dimensions=config.embedder_dimensions, index_config=config.index
        )
        self.annotator = DatabaseAnnotator(self.llm, params=config.preparation_params)
        self.generator: Optional[NLQRetrievalGenerator] = None
        self.retuner: Optional[DVQRetrievalRetuner] = None
        self.debugger: Optional[AnnotationBasedDebugger] = None
        self.execution_backend: Optional[ExecutionBackend] = (
            resolve_backend(
                config.execution_backend,
                optimize=config.optimize_plans,
                approximate=config.approximate_execution,
                max_workers=(
                    config.execution_workers if config.execution_workers > 1 else None
                ),
                morsel_size=config.execution_morsel_size,
            )
            if config.verify_execution or config.max_repair_rounds > 0
            else None
        )
        self.plan: Optional[StagePlan] = None
        self.repair_stats = RepairStats()
        self._stats_lock = threading.Lock()
        self._fitted = False

    @property
    def llm_cache(self) -> Optional[LLMCache]:
        """The interposed completion cache, if ``config.use_llm_cache`` is set."""
        return self.llm if isinstance(self.llm, LLMCache) else None

    # -- preparation ------------------------------------------------------------

    def fit(self, examples: Sequence[NVBenchExample], catalog: Catalog) -> "GRED":
        """Preparatory phase: build the embedding library and the stage plan."""
        self.retriever.prepare(examples, max_examples=self.config.max_library_examples)
        self.generator = NLQRetrievalGenerator(
            retriever=self.retriever,
            llm=self.llm,
            catalog=catalog,
            top_k=self.config.top_k,
            params=self.config.pipeline_params,
        )
        self.retuner = DVQRetrievalRetuner(
            retriever=self.retriever,
            llm=self.llm,
            top_k=self.config.top_k,
            params=self.config.pipeline_params,
        )
        self.debugger = AnnotationBasedDebugger(
            annotator=self.annotator,
            llm=self.llm,
            params=self.config.pipeline_params,
        )
        self.plan = self.build_plan()
        self._fitted = True
        return self

    def build_plan(self) -> StagePlan:
        """The default stage plan for this model's configuration.

        Called by :meth:`fit`; callers wanting a custom pipeline can derive
        edits from the result (``model.plan = model.build_plan().without("retune")``)
        or assign any :class:`~repro.pipeline.plan.StagePlan` to :attr:`plan`.
        """
        if self.generator is None or self.retuner is None or self.debugger is None:
            raise not_fitted("GRED", "build_plan")
        return build_stage_plan(
            self.config,
            generator=self.generator,
            retuner=self.retuner,
            debugger=self.debugger,
            execution_backend=self.execution_backend,
            llm_cache=self.llm_cache,
        )

    def _require_fitted(self, caller: str) -> StagePlan:
        if not self._fitted or self.plan is None:
            raise not_fitted("GRED", caller)
        return self.plan

    # -- inference -----------------------------------------------------------------

    def trace(self, nlq: str, database: Database) -> GREDTrace:
        """Run the stage plan and keep every intermediate DVQ plus stage timings."""
        plan = self._require_fitted("trace")
        context = plan.run(StageContext(nlq=nlq, database=database))
        repair_summary = context.meta.get(REPAIR)
        if isinstance(repair_summary, dict):
            with self._stats_lock:
                self.repair_stats.observe(repair_summary)
        return GREDTrace.from_context(context)

    def predict(self, nlq: str, database: Database) -> str:
        self._require_fitted("predict")
        return self.trace(nlq, database).final

    def trace_batch(
        self,
        examples: Sequence[NVBenchExample],
        catalog: Catalog,
        runner: Optional[BatchRunner] = None,
    ) -> BatchReport:
        """Run :meth:`trace` over a dataset through a batch runner.

        Returns the full :class:`~repro.runtime.runner.BatchReport`, which
        preserves input order, isolates per-example failures and carries
        per-example timings.  Without an explicit ``runner`` a serial
        (``max_workers=1``) runner is used, making the result bit-identical to
        looping over :meth:`trace`.
        """
        runner = runner or BatchRunner(max_workers=1)
        return runner.run(
            list(examples),
            lambda example: self.trace(example.nlq, catalog.get(example.db_id)),
        )

    def predict_batch(
        self,
        examples: Sequence[NVBenchExample],
        catalog: Catalog,
        runner: Optional[BatchRunner] = None,
    ) -> List[GREDTrace]:
        """Traces for a list of examples (used by the experiment harness).

        Routes through :meth:`trace_batch`; pass a
        :class:`~repro.runtime.runner.BatchRunner` with ``max_workers > 1`` to
        overlap LLM latency across examples.  Raises
        :class:`~repro.runtime.runner.BatchFailure` if any example fails —
        callers wanting failure isolation should use :meth:`trace_batch` and
        inspect the report.
        """
        return self.trace_batch(examples, catalog, runner=runner).values(strict=True)
