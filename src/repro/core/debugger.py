"""Stage (c): the Annotation-based Debugger."""

from __future__ import annotations

from typing import Optional

from repro.core.annotator import DatabaseAnnotator
from repro.core.prompts import DEBUG_SYSTEM, make_debug_prompt
from repro.database.database import Database
from repro.llm.interface import ChatModel, CompletionParams


class AnnotationBasedDebugger:
    """Repairs out-of-schema column names using the annotated target database."""

    def __init__(
        self,
        annotator: DatabaseAnnotator,
        llm: ChatModel,
        params: Optional[CompletionParams] = None,
    ):
        self.annotator = annotator
        self.llm = llm
        self.params = params or CompletionParams()

    def debug(self, dvq_rtn: str, database: Database) -> str:
        """Produce ``DVQ_dbg`` from ``DVQ_rtn`` and the annotated database."""
        annotation = self.annotator.annotate(database)
        prompt = make_debug_prompt(database.schema, annotation, dvq_rtn)
        response = self.llm.complete_text(DEBUG_SYSTEM, prompt, params=self.params).strip()
        return response or dvq_rtn
