"""Stage (c): the Annotation-based Debugger."""

from __future__ import annotations

from typing import Optional

from repro.core.annotator import DatabaseAnnotator
from repro.core.prompts import DEBUG_SYSTEM, REPAIR_SYSTEM, make_debug_prompt, make_repair_prompt
from repro.database.database import Database
from repro.executor.backend import ExecutionOutcome
from repro.llm.interface import ChatModel, CompletionParams


class AnnotationBasedDebugger:
    """Repairs out-of-schema column names using the annotated target database.

    Beyond the paper's one-shot :meth:`debug` pass, :meth:`repair` is the
    execution-guided variant used by the repair loop
    (:class:`repro.pipeline.stages.ExecutionGuidedRepairStage`): it feeds the
    structured verdict of a failed execution back into the LLM so the model
    knows *which* references broke the query.
    """

    def __init__(
        self,
        annotator: DatabaseAnnotator,
        llm: ChatModel,
        params: Optional[CompletionParams] = None,
    ):
        self.annotator = annotator
        self.llm = llm
        self.params = params or CompletionParams()

    def debug(self, dvq_rtn: str, database: Database) -> str:
        """Produce ``DVQ_dbg`` from ``DVQ_rtn`` and the annotated database."""
        annotation = self.annotator.annotate(database)
        prompt = make_debug_prompt(database.schema, annotation, dvq_rtn)
        response = self.llm.complete_text(DEBUG_SYSTEM, prompt, params=self.params).strip()
        return response or dvq_rtn

    def repair(self, dvq: str, database: Database, outcome: ExecutionOutcome) -> str:
        """Produce a repaired DVQ from a failing one plus its execution verdict."""
        annotation = self.annotator.annotate(database)
        prompt = make_repair_prompt(database.schema, annotation, dvq, outcome)
        response = self.llm.complete_text(REPAIR_SYSTEM, prompt, params=self.params).strip()
        return response or dvq
