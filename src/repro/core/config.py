"""Configuration of the GRED pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.index import IndexConfig
from repro.llm.interface import CompletionParams


@dataclass(frozen=True)
class GREDConfig:
    """Hyper-parameters and ablation switches for GRED.

    ``top_k = 10`` follows Section 5.1 of the paper; the two completion
    parameter sets mirror the reported ``openai.ChatCompletion.create``
    settings for preparation and for the main pipeline.

    Attributes:
        top_k: number of retrieved examples fed to the generator and retuner.
        use_retuner: ablation switch for the DVQ-Retrieval Retuner (stage b).
        use_debugger: ablation switch for the Annotation-based Debugger
            (stage c).
        embedder_dimensions: output size of the hashed TF-IDF embedder backing
            the retrieval libraries.
        max_library_examples: cap on how many training examples are embedded
            into the NLQ/DVQ libraries during :meth:`~repro.core.pipeline.GRED.fit`.
        name: display name used in tables; ablation switches decorate it via
            :meth:`variant_name`.
        use_llm_cache: wrap the chat model in an
            :class:`~repro.runtime.cache.LLMCache` so identical completion
            requests (shared database annotations, repeated variant prompts)
            are served from memory.  Off by default to keep the completion log
            a faithful call-by-call record; the experiment workbench turns it
            on.
        llm_cache_max_entries: optional FIFO capacity bound for the completion
            cache (``None`` = unbounded).  Only meaningful with
            ``use_llm_cache``.
        verify_execution: after the debugger stage, execute the final DVQ
            against the target database and record whether it materialises on
            :attr:`~repro.core.pipeline.GREDTrace.executes` — the paper's
            "no chart" check, off by default because it adds an execution per
            prediction.
        execution_backend: which engine runs the execution checks —
            ``"columnar"`` (the default: the logical-plan engine over column
            batches, see :mod:`repro.plan`), ``"interpreter"`` (the legacy
            row-at-a-time reference executor) or ``"sqlite"`` (the DVQ->SQL
            compiler over SQLite, see :mod:`repro.sql`).  All three return
            identical results; only speed differs.  Only meaningful with
            ``verify_execution`` or ``max_repair_rounds > 0``.
        optimize_plans: run the rule-based plan optimizer (predicate
            pushdown, projection pruning, hash joins, constant folding)
            before executing on the columnar backend.  On by default; turn
            off only for optimizer ablations — results are identical either
            way.  Ignored by the other backends.
        approximate_execution: enable sampling-based approximate query
            processing on the columnar backend: eligible aggregate/bin
            queries are answered from a precomputed seeded row sample with
            scale-up and CLT error bounds (see :mod:`repro.plan.sampling`),
            making large-table charts near-instant.  Ineligible queries
            (MIN/MAX/DISTINCT, top-k, small tables) silently run exact.
            Off by default because repair loops and metrics expect exact
            rows.  Ignored by the other backends.
        execution_workers: thread-pool width of the columnar engine's
            parallel pipeline (morsel scans, partitioned joins, partial
            grouped aggregation).  ``1`` (default) stays serial; any width
            returns bit-identical results, so this is purely a throughput
            knob.  Ignored by the other backends.
        execution_morsel_size: rows per morsel / join partition when
            ``execution_workers > 1`` (``None`` = the engine default).
            Ignored by the other backends.
        index: retrieval-index configuration for the NLQ/DVQ libraries
            (:class:`~repro.index.IndexConfig`): the search backend
            (``"exact"`` brute force — the default — or ``"partitioned"``
            IVF-style probing), its partitioning knobs, and an optional
            ``snapshot_path`` under which the prepared libraries are
            persisted and restored instead of re-embedding the corpus on
            every process start.
        max_repair_rounds: enable the execution-guided repair loop
            (:class:`repro.pipeline.stages.ExecutionGuidedRepairStage`):
            after the regular stages, the candidate DVQ is executed on
            ``execution_backend`` and, on failure, the structured error is
            fed back into the annotation-based debugger for up to this many
            rounds.  ``0`` (default) keeps the historical pipeline — the
            execution verdict stays a passive metric.
    """

    top_k: int = 10
    use_retuner: bool = True
    use_debugger: bool = True
    embedder_dimensions: int = 512
    max_library_examples: int = 8000
    name: str = "GRED"
    use_llm_cache: bool = False
    llm_cache_max_entries: Optional[int] = None
    verify_execution: bool = False
    execution_backend: str = "columnar"
    optimize_plans: bool = True
    approximate_execution: bool = False
    execution_workers: int = 1
    execution_morsel_size: Optional[int] = None
    index: IndexConfig = field(default_factory=IndexConfig)
    max_repair_rounds: int = 0

    @property
    def preparation_params(self) -> CompletionParams:
        return CompletionParams(temperature=0.0, frequency_penalty=0.0, presence_penalty=0.0)

    @property
    def pipeline_params(self) -> CompletionParams:
        return CompletionParams(temperature=0.0, frequency_penalty=-0.5, presence_penalty=-0.5)

    def variant_name(self) -> str:
        """A descriptive name reflecting the ablation switches."""
        if self.use_retuner and self.use_debugger:
            base = self.name
        elif not self.use_retuner and not self.use_debugger:
            base = f"{self.name} w/o RTN&DBG"
        elif not self.use_retuner:
            base = f"{self.name} w/o RTN"
        else:
            base = f"{self.name} w/o DBG"
        if self.max_repair_rounds > 0:
            base = f"{base} + repair"
        return base
