"""Configuration of the GRED pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.llm.interface import CompletionParams


@dataclass(frozen=True)
class GREDConfig:
    """Hyper-parameters and ablation switches for GRED.

    ``top_k = 10`` follows Section 5.1 of the paper; the two completion
    parameter sets mirror the reported ``openai.ChatCompletion.create``
    settings for preparation and for the main pipeline.

    Attributes:
        top_k: number of retrieved examples fed to the generator and retuner.
        use_retuner: ablation switch for the DVQ-Retrieval Retuner (stage b).
        use_debugger: ablation switch for the Annotation-based Debugger
            (stage c).
        embedder_dimensions: output size of the hashed TF-IDF embedder backing
            the retrieval libraries.
        max_library_examples: cap on how many training examples are embedded
            into the NLQ/DVQ libraries during :meth:`~repro.core.pipeline.GRED.fit`.
        name: display name used in tables; ablation switches decorate it via
            :meth:`variant_name`.
        use_llm_cache: wrap the chat model in an
            :class:`~repro.runtime.cache.LLMCache` so identical completion
            requests (shared database annotations, repeated variant prompts)
            are served from memory.  Off by default to keep the completion log
            a faithful call-by-call record; the experiment workbench turns it
            on.
        llm_cache_max_entries: optional FIFO capacity bound for the completion
            cache (``None`` = unbounded).  Only meaningful with
            ``use_llm_cache``.
        verify_execution: after the debugger stage, execute the final DVQ
            against the target database and record whether it materialises on
            :attr:`~repro.core.pipeline.GREDTrace.executes` — the paper's
            "no chart" check, off by default because it adds an execution per
            prediction.
        execution_backend: which engine runs the verification —
            ``"interpreter"`` (the reference row-at-a-time executor) or
            ``"sqlite"`` (the DVQ->SQL compiler over SQLite, see
            :mod:`repro.sql`).  Only meaningful with ``verify_execution``.
    """

    top_k: int = 10
    use_retuner: bool = True
    use_debugger: bool = True
    embedder_dimensions: int = 512
    max_library_examples: int = 8000
    name: str = "GRED"
    use_llm_cache: bool = False
    llm_cache_max_entries: Optional[int] = None
    verify_execution: bool = False
    execution_backend: str = "interpreter"

    @property
    def preparation_params(self) -> CompletionParams:
        return CompletionParams(temperature=0.0, frequency_penalty=0.0, presence_penalty=0.0)

    @property
    def pipeline_params(self) -> CompletionParams:
        return CompletionParams(temperature=0.0, frequency_penalty=-0.5, presence_penalty=-0.5)

    def variant_name(self) -> str:
        """A descriptive name reflecting the ablation switches."""
        if self.use_retuner and self.use_debugger:
            return self.name
        if not self.use_retuner and not self.use_debugger:
            return f"{self.name} w/o RTN&DBG"
        if not self.use_retuner:
            return f"{self.name} w/o RTN"
        return f"{self.name} w/o DBG"
