"""Configuration of the GRED pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.interface import CompletionParams


@dataclass(frozen=True)
class GREDConfig:
    """Hyper-parameters and ablation switches for GRED.

    ``top_k = 10`` follows Section 5.1 of the paper; the two completion
    parameter sets mirror the reported ``openai.ChatCompletion.create``
    settings for preparation and for the main pipeline.
    """

    top_k: int = 10
    use_retuner: bool = True
    use_debugger: bool = True
    embedder_dimensions: int = 512
    max_library_examples: int = 8000
    name: str = "GRED"

    @property
    def preparation_params(self) -> CompletionParams:
        return CompletionParams(temperature=0.0, frequency_penalty=0.0, presence_penalty=0.0)

    @property
    def pipeline_params(self) -> CompletionParams:
        return CompletionParams(temperature=0.0, frequency_penalty=-0.5, presence_penalty=-0.5)

    def variant_name(self) -> str:
        """A descriptive name reflecting the ablation switches."""
        if self.use_retuner and self.use_debugger:
            return self.name
        if not self.use_retuner and not self.use_debugger:
            return f"{self.name} w/o RTN&DBG"
        if not self.use_retuner:
            return f"{self.name} w/o RTN"
        return f"{self.name} w/o DBG"
