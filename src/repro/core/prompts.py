"""Prompt makers for the three GRED stages plus database annotation (Appendix C)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.database.schema import DatabaseSchema
from repro.executor.backend import ExecutionOutcome
from repro.llm import markers
from repro.nvbench.example import NVBenchExample

ANNOTATION_SYSTEM = "You are a data mining engineer with ten years of experience in data visualization."
GENERATION_SYSTEM = "Please follow the syntax in the examples instead of SQL syntax."
RETUNE_SYSTEM = (
    "The Reference Data Visualization Queries(DVQs) all comply with the syntax of DVQ. "
    "Please follow the syntax of the referenced DVQ to modify the Original DVQ."
)
DEBUG_SYSTEM = (
    "#### NOTE: Don't replace column names in Original DVQ that already exist in the "
    "database schemas, especially column names in GROUP BY Clause!"
)
REPAIR_SYSTEM = (
    "#### NOTE: The Original DVQ failed to execute on the target database. "
    "Use the execution error to decide which references must change; every table and "
    "column the error names as missing MUST be replaced with an existing one."
)

CHART_TYPE_LINE = "# [ BAR , PIE , LINE , SCATTER ]"


def make_annotation_prompt(schema: DatabaseSchema) -> str:
    """The database-annotation prompt (Appendix C.1)."""
    return "\n".join(
        [
            f"#### {markers.TASK_ANNOTATION} to the following database schemas.",
            markers.SCHEMA_HEADER,
            schema.describe(),
            markers.ANNOTATION_HEADER,
            markers.ANSWER_PREFIX,
        ]
    )


def _example_block(schema_text: str, question: str, dvq: str) -> List[str]:
    return [
        markers.SCHEMA_HEADER,
        schema_text,
        "#",
        markers.CHART_TYPES_HEADER,
        CHART_TYPE_LINE,
        markers.QUESTION_HEADER,
        f'# "{question}"',
        markers.DVQ_HEADER,
        f"{markers.ANSWER_PREFIX} {dvq}",
        "",
    ]


def make_generation_prompt(
    examples: Sequence[Tuple[NVBenchExample, DatabaseSchema]],
    target_question: str,
    target_schema: DatabaseSchema,
) -> str:
    """The few-shot generation prompt (Appendix C.2).

    ``examples`` must already be ordered in *ascending* similarity so the most
    similar example sits closest to the asking part of the prompt.
    """
    lines: List[str] = [
        f"#### Given Natural Language Questions, {markers.TASK_GENERATION}.",
        "",
    ]
    for example, schema in examples:
        lines.extend(_example_block(schema.describe(), example.nlq, example.dvq))
    lines.extend(
        [
            markers.SCHEMA_HEADER,
            target_schema.describe(),
            "#",
            markers.CHART_TYPES_HEADER,
            CHART_TYPE_LINE,
            markers.QUESTION_HEADER,
            f'# "{target_question}"',
            markers.DVQ_HEADER,
            markers.ANSWER_PREFIX,
        ]
    )
    return "\n".join(lines)


def make_retune_prompt(reference_dvqs: Sequence[str], original_dvq: str) -> str:
    """The style-retuning prompt (Appendix C.3)."""
    lines: List[str] = [markers.REFERENCE_DVQS_HEADER]
    for index, reference in enumerate(reference_dvqs, start=1):
        lines.append(f"{index} - {reference}")
    lines.extend(
        [
            "",
            f"#### Given the Reference DVQs, {markers.TASK_RETUNE} of the Reference DVQs.",
            "#### NOTE: Do not Modify the column name in Original DVQ. "
            "Especially do not Modify the column names in the ORDER clause!",
            markers.ORIGINAL_DVQ_HEADER,
            f"# {original_dvq}",
            f"{markers.ANSWER_PREFIX} Let's think step by step!",
        ]
    )
    return "\n".join(lines)


def make_repair_prompt(
    schema: DatabaseSchema,
    annotation: str,
    original_dvq: str,
    outcome: ExecutionOutcome,
) -> str:
    """The execution-guided repair prompt.

    Extends the Appendix C.4 debugging layout with a structured
    ``### Execution Error:`` section so the LLM knows *why* the candidate
    failed — the category, the identifiers the engine reported missing and
    the raw engine message.
    """
    return "\n".join(
        [
            "#### Please generate detailed natural language annotations to the following database schemas.",
            markers.SCHEMA_HEADER,
            schema.describe(),
            markers.ANNOTATION_HEADER,
            annotation,
            "",
            "#### Given Database Schemas, their Natural Language Annotations and the "
            f"Execution Error below, {markers.TASK_REPAIR} on the database "
            "(DVQ, a new Programming Language abstracted from Vega-Zero).",
            REPAIR_SYSTEM,
            markers.EXECUTION_ERROR_HEADER,
            f"# category: {outcome.category}",
            f"# missing: {' , '.join(outcome.missing)}",
            f"# {outcome.message}",
            markers.ORIGINAL_DVQ_HEADER,
            f"# {original_dvq}",
            f"{markers.ANSWER_PREFIX} Let's think step by step!",
        ]
    )


def make_debug_prompt(schema: DatabaseSchema, annotation: str, original_dvq: str) -> str:
    """The annotation-based debugging prompt (Appendix C.4)."""
    return "\n".join(
        [
            "#### Please generate detailed natural language annotations to the following database schemas.",
            markers.SCHEMA_HEADER,
            schema.describe(),
            markers.ANNOTATION_HEADER,
            annotation,
            "",
            "#### Given Database Schemas and their corresponding Natural Language Annotations, "
            f"{markers.TASK_DEBUG}(DVQ, a new Programming Language abstracted from Vega-Zero) "
            "that do not exist in the database.",
            DEBUG_SYSTEM,
            markers.ORIGINAL_DVQ_HEADER,
            f"# {original_dvq}",
            f"{markers.ANSWER_PREFIX} Let's think step by step!",
        ]
    )
