"""Dataset construction: build nvBench-Rob from the synthetic nvBench corpus.

Shows the two perturbation passes of Section 2 of the paper — NLQ
reconstruction and schema synonymous substitution — and saves the three variant
test sets as JSON files.

Run with::

    python examples/build_nvbench_rob.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import build_corpus
from repro.robustness import NLQRewriter, RobustnessSuiteBuilder, SchemaRenamer


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("nvbench_rob_output")
    output_dir.mkdir(parents=True, exist_ok=True)

    dataset = build_corpus(scale=0.1, seed=7)
    builder = RobustnessSuiteBuilder(
        nlq_rewriter=NLQRewriter(word_probability=0.6),
        schema_renamer=SchemaRenamer(rename_probability=0.6),
    )
    suite = builder.build(dataset)

    example = suite.original.examples[0]
    nlq_variant = suite.nlq_variant.examples[0]
    schema_variant = suite.schema_variant.examples[0]
    print("NLQ reconstruction example:")
    print(f"  original : {example.nlq}")
    print(f"  rewritten: {nlq_variant.nlq}")
    print("\nSchema synonymous substitution example:")
    print(f"  original gold DVQ: {example.dvq}")
    print(f"  renamed gold DVQ : {schema_variant.dvq}  (db: {schema_variant.db_id})")

    plan = suite.rename_plans[example.db_id]
    changed = [
        f"{table}.{old} -> {new}"
        for (table, old), new in plan.column_renames.items()
        if old.lower() != new.lower()
    ]
    print(f"\nRenamed columns in {example.db_id} ({len(changed)} changed):")
    for line in changed[:8]:
        print(f"  {line}")

    for name, variant in [
        ("nvbench_rob_nlq.json", suite.nlq_variant),
        ("nvbench_rob_schema.json", suite.schema_variant),
        ("nvbench_rob_nlq_schema.json", suite.dual_variant),
    ]:
        path = output_dir / name
        variant.save_examples(path)
        print(f"Wrote {len(variant)} examples to {path}")


if __name__ == "__main__":
    main()
