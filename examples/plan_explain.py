"""Query planning: inspect the logical plan every engine lowers from.

Demonstrates the unified-IR layer added in `repro.plan`:

1. lower a DVQ to its canonical logical plan with `plan_query` and print
   `plan.explain()` — the operator tree both engines consume;
2. run the rule-based optimizer and print the plan again to see predicate
   pushdown, projection pruning and hash-join selection at work;
3. execute on the columnar engine, the legacy row interpreter and SQLite and
   check all three agree row-for-row;
4. toggle individual optimizer rules to see their effect on the plan.

Run with:  PYTHONPATH=src python examples/plan_explain.py
"""

from repro.database import DataGenerator
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.executor import ColumnarBackend, InterpreterBackend
from repro.plan import OptimizerConfig, optimize, plan_query
from repro.sql import DVQToSQLCompiler, SQLiteBackend


def build_database():
    schema = build_schema(
        "company",
        [
            (
                "employees",
                [
                    ("EMP_ID", ColumnType.NUMBER, "id"),
                    ("NAME", ColumnType.TEXT, "name"),
                    ("SALARY", ColumnType.NUMBER, "salary"),
                    ("HIRE_DATE", ColumnType.DATE, "date"),
                    ("DEPT_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "departments",
                [
                    ("DEPT_ID", ColumnType.NUMBER, "id"),
                    ("DEPT_NAME", ColumnType.TEXT, "department"),
                    ("CITY", ColumnType.TEXT, "city"),
                ],
            ),
        ],
        foreign_keys=[("employees", "DEPT_ID", "departments", "DEPT_ID")],
    )
    return DataGenerator(seed=11).populate(schema, rows_per_table=120)


def main():
    database = build_database()
    query = parse_dvq(
        "Visualize BAR SELECT DEPT_NAME , AVG(SALARY) FROM employees AS T1 "
        "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
        "WHERE SALARY > 500 GROUP BY DEPT_NAME ORDER BY AVG(SALARY) DESC LIMIT 3"
    )

    # 1. the canonical plan: schema resolution done, one spine of operators
    plan = plan_query(query, database.schema)
    print("canonical logical plan (what the SQL compiler lowers):")
    print(plan.explain())

    # 2. the optimized plan: what the columnar engine actually executes
    optimized = optimize(plan)
    print("\noptimized plan (pushdown + pruning + hash join):")
    print(optimized.explain())

    # 3. three engines, one plan, identical rows
    columnar = ColumnarBackend()
    results = {
        "columnar": columnar.execute(query, database),
        "interpreter": InterpreterBackend().execute(query, database),
        "sqlite": SQLiteBackend().execute(query, database),
    }
    reference = results["columnar"]
    assert all(r.rows == reference.rows for r in results.values())
    print("\ntop departments by average salary (identical on all three engines):")
    for dept, average in reference.rows:
        print(f"  {dept:<18} {average:8.1f}")
    print(f"\ncompiled SQL: {DVQToSQLCompiler().compile(query, database.schema).sql}")

    # 4. optimizer rules are individually toggleable (see OptimizerConfig)
    no_pushdown = optimize(plan, OptimizerConfig(pushdown=False))
    print("\nwith predicate pushdown disabled, the filter stays above the join:")
    print(no_pushdown.explain())


if __name__ == "__main__":
    main()
