"""Choosing a retrieval backend: exact vs partitioned search, and snapshots.

Demonstrates the pluggable vector-index subsystem added in `repro.index`:

1. build the same library on both backends (`ExactIndex` is the brute-force
   oracle, `PartitionedIndex` probes a few k-means partitions) and compare
   their answers;
2. measure the recall/latency trade-off as `nprobe` varies on a larger
   library;
3. persist a prepared `GREDRetriever` and reload it without re-embedding
   anything (the embedder call counter proves it).

Run with:  PYTHONPATH=src python examples/index_backends.py
"""

import tempfile
import time

import numpy as np

from repro.core.retriever import GREDRetriever
from repro.embeddings import EmbedderConfig, TextEmbedder, VectorStore
from repro.index import ExactIndex, IndexConfig, PartitionedIndex
from repro.nvbench.generator import build_corpus


def clustered_library(count, dims=64, clusters=128, noise=0.15, seed=42):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(clusters, dims))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    rows = centers[rng.integers(0, clusters, size=count)] + noise * rng.normal(size=(count, dims))
    rows /= np.linalg.norm(rows, axis=1, keepdims=True)
    queries = centers[rng.integers(0, clusters, size=200)] + noise * rng.normal(size=(200, dims))
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    return rows, queries


def main():
    # 1. both backends answer the same question on a small text library
    store = VectorStore(TextEmbedder(EmbedderConfig(dimensions=128)))
    partitioned_store = VectorStore(
        TextEmbedder(EmbedderConfig(dimensions=128)),
        config=IndexConfig(backend="partitioned", num_partitions=4, nprobe=4),
    )
    entries = [
        (f"q{i}", text, i)
        for i, text in enumerate(
            [
                "average salary per department",
                "number of pets per student",
                "capacity of each cinema by year",
                "total budget for every project",
                "mean wage of the staff by city",
                "count of flights per airline",
            ]
        )
    ]
    store.add_many(entries)
    partitioned_store.add_many(entries)
    for name, s in (("exact", store), ("partitioned", partitioned_store)):
        hits = s.search("mean salary for every department", top_k=2)
        print(f"{name:<12} top-2: {[(hit.key, round(hit.score, 3)) for hit in hits]}")

    # 2. why the partitioned backend exists: the recall/latency trade-off
    rows, queries = clustered_library(count=20_000)
    keys = [f"e{i:06d}" for i in range(len(rows))]
    exact = ExactIndex()
    exact.add(keys, rows, list(range(len(rows))))
    started = time.perf_counter()
    truth = exact.search_matrix(queries, 5)
    exact_seconds = time.perf_counter() - started
    print(f"\n20k-entry library, 200 queries — exact scan: {exact_seconds * 1e3:.0f} ms")
    for nprobe in (4, 8, 16):
        index = PartitionedIndex(num_partitions=64, nprobe=nprobe, search_workers=4)
        index.add(keys, rows, list(range(len(rows))))
        index.search_matrix(queries[:1], 5)  # train the partitions
        started = time.perf_counter()
        approx = index.search_matrix(queries, 5)
        seconds = time.perf_counter() - started
        recall = np.mean(
            [len({h.key for h in t} & {h.key for h in a}) / 5 for t, a in zip(truth, approx)]
        )
        print(
            f"  nprobe={nprobe:>2}/64: {seconds * 1e3:5.0f} ms "
            f"({exact_seconds / seconds:4.1f}x) recall@5 {recall:.3f}"
        )

    # 3. snapshot persistence: prepare once, reload without re-embedding
    dataset = build_corpus(scale=0.05, seed=11)
    with tempfile.TemporaryDirectory() as directory:
        config = IndexConfig(snapshot_path=f"{directory}/library")
        first = GREDRetriever(index_config=config)
        first.prepare(dataset.train)
        print(f"\ncold prepare embedded {first.embedder.texts_embedded} texts")
        restored = GREDRetriever(index_config=config)
        restored.prepare(dataset.train)  # same corpus -> loads the snapshot
        hits = restored.retrieve_by_nlq(dataset.test[0].nlq, top_k=3)
        print(
            f"warm prepare embedded {restored.embedder.texts_embedded - 1} texts "
            f"(library restored from disk); top hit: {hits[0].key} @ {hits[0].score:.3f}"
        )


if __name__ == "__main__":
    main()
