"""Using GRED on your own database.

Defines a small e-commerce database from scratch (schema + rows), prepares GRED
on the synthetic nvBench training split, and answers questions phrased by a
user who has never seen the schema — including column names that only exist as
synonyms of what the user says.

Run with::

    python examples/custom_database.py
"""

from __future__ import annotations

from repro import GRED, GREDConfig, build_corpus
from repro.database import Database
from repro.database.schema import ColumnType, build_schema
from repro.vegalite import ChartRenderer


def build_shop_database() -> Database:
    schema = build_schema(
        "web_shop",
        [
            (
                "purchases",
                [
                    ("purchase_id", ColumnType.NUMBER, "id"),
                    ("client_town", ColumnType.TEXT, "city"),
                    ("goods_type", ColumnType.TEXT, "category"),
                    ("paid_amount", ColumnType.NUMBER, "price"),
                    ("purchase_day", ColumnType.DATE, "date"),
                ],
            ),
        ],
        domain="retail",
    )
    database = Database(schema)
    rows = [
        {"purchase_id": 1, "client_town": "Lisbon", "goods_type": "Books", "paid_amount": 40, "purchase_day": "2021-03-02"},
        {"purchase_id": 2, "client_town": "Lisbon", "goods_type": "Games", "paid_amount": 120, "purchase_day": "2021-07-15"},
        {"purchase_id": 3, "client_town": "Porto", "goods_type": "Books", "paid_amount": 25, "purchase_day": "2022-01-20"},
        {"purchase_id": 4, "client_town": "Madrid", "goods_type": "Music", "paid_amount": 60, "purchase_day": "2022-05-09"},
        {"purchase_id": 5, "client_town": "Porto", "goods_type": "Games", "paid_amount": 200, "purchase_day": "2023-02-11"},
        {"purchase_id": 6, "client_town": "Madrid", "goods_type": "Books", "paid_amount": 35, "purchase_day": "2023-08-30"},
    ]
    database.table("purchases").extend(rows)
    return database


def main() -> None:
    print("Preparing GRED on the synthetic nvBench training split ...")
    dataset = build_corpus(scale=0.08, seed=7)
    gred = GRED(GREDConfig(top_k=10)).fit(dataset.train, dataset.catalog)

    database = build_shop_database()
    questions = [
        "Show me a histogram of how many purchases were made in each town.",
        "Draw the trend of the average price paid per year.",
        "Give me a pie chart splitting purchases by the kind of goods.",
    ]
    renderer = ChartRenderer()
    for question in questions:
        print(f"\nQ: {question}")
        dvq = gred.predict(question, database)
        print(f"DVQ: {dvq}")
        chart = renderer.try_render_text(dvq, database)
        if chart is None:
            print("  (could not render a chart for this DVQ)")
            continue
        print(chart.ascii_render(width=30, max_rows=8))


if __name__ == "__main__":
    main()
