"""Robustness evaluation: reproduce the paper's Tables 1-3 and Figure 3 in one run.

Trains the three baselines, prepares GRED, and evaluates every model on the
original test split plus the three nvBench-Rob variant sets.

Run with::

    python examples/robustness_evaluation.py [scale]

where ``scale`` (default 0.1) controls the corpus size; 1.0 reproduces the
paper-scale corpus and takes correspondingly longer.
"""

from __future__ import annotations

import sys

from repro import Workbench, WorkbenchConfig, VariantKind
from repro.evaluation.report import format_accuracy_table, format_overall_series


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    workbench = Workbench(WorkbenchConfig(scale=scale, seed=7, evaluation_limit=120))

    print(f"Corpus: {len(workbench.dataset)} pairs, {len(workbench.dataset.catalog)} databases "
          f"(scale={scale})")
    print("Training baselines and preparing GRED ...")
    workbench.baselines()
    workbench.gred()

    for kind, title in [
        (VariantKind.NLQ, "Table 1 — nvBench-Rob_nlq"),
        (VariantKind.SCHEMA, "Table 2 — nvBench-Rob_schema"),
        (VariantKind.BOTH, "Table 3 — nvBench-Rob_(nlq,schema)"),
    ]:
        results = workbench.table_results(kind)
        print("\n" + format_accuracy_table(results, title=title))

    print("\nFigure 3 — accuracy drop from nvBench to nvBench-Rob_(nlq,schema):")
    print(format_overall_series(workbench.figure3_series(include_gred=True)))


if __name__ == "__main__":
    main()
