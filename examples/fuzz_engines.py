"""Differential fuzzing walkthrough: schema graph -> fuzz sweep -> minimized repro.

Builds a seeded snowflake schema graph with correlated data, sweeps a few
hundred statistics-driven DVQs through the four-engine matrix (interpreter
reference vs SQLite vs columnar vs unoptimized columnar), then injects a
deliberate comparison bug into the columnar engine and shows the fuzzer
catching it and delta-debugging the failure down to a paste-ready reproducer.

Run with::

    python examples/fuzz_engines.py
"""

from __future__ import annotations

import repro.executor.columnar as columnar_module
from repro.dvq.nodes import Condition
from repro.workload import SchemaGraphConfig, build_workload_database, fuzz_database


def main() -> None:
    print("Building a seeded 8-table snowflake schema graph (12k rows) ...")
    database = build_workload_database(
        SchemaGraphConfig(seed=3, table_count=8, topology="snowflake", name="demo"),
        total_rows=12_000,
    )
    for table in database.tables():
        print(
            f"  {table.name}: {len(table.rows)} rows, "
            f"{len(table.schema.columns)} columns"
        )

    print("\nSweeping 300 statistics-driven DVQs through the engine matrix ...")
    report = fuzz_database(database, count=300, base_seed=0, max_workers=2)
    print(report.summary())

    print("\nInjecting a bug into the columnar engine ('<' behaves as '<=') ...")
    real = columnar_module.evaluate_condition

    def buggy(condition, value, *args, **kwargs):
        if condition.operator == "<":
            condition = Condition(
                column=condition.column,
                operator="<=",
                value=condition.value,
                value2=condition.value2,
                negated=condition.negated,
            )
        return real(condition, value, *args, **kwargs)

    columnar_module.evaluate_condition = buggy
    try:
        report = fuzz_database(database, count=300, base_seed=0, max_workers=2)
    finally:
        columnar_module.evaluate_condition = real

    print(report.summary())
    if report.mismatches:
        print("\nFirst minimized reproducer:\n")
        print(report.mismatches[0].repro_snippet())


if __name__ == "__main__":
    main()
