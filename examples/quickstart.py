"""Quickstart: translate a natural language question into a chart with GRED.

Builds a small synthetic nvBench corpus, prepares GRED on its training split,
asks a question that does *not* mention any column name explicitly, and renders
the resulting chart.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GRED, GREDConfig, build_corpus
from repro.vegalite import ChartRenderer


def main() -> None:
    print("Building a small synthetic nvBench corpus ...")
    dataset = build_corpus(scale=0.08, seed=7)
    print(f"  {len(dataset)} (NLQ, DVQ) pairs over {len(dataset.catalog)} databases")

    print("Preparing GRED (embedding library + database annotations) ...")
    gred = GRED(GREDConfig(top_k=10)).fit(dataset.train, dataset.catalog)

    database = dataset.catalog.get(dataset.test[0].db_id)
    question = (
        "Please give me a histogram showing how many staff members share each family name, "
        "arranged from the largest downwards."
    )
    print(f"\nDatabase: {database.name}")
    print(f"Question: {question}")

    trace = gred.trace(question, database)
    print(f"\nDVQ after the NLQ-Retrieval Generator : {trace.dvq_gen}")
    print(f"DVQ after the DVQ-Retrieval Retuner   : {trace.dvq_rtn}")
    print(f"DVQ after the Annotation-based Debugger: {trace.dvq_dbg}")

    chart = ChartRenderer().try_render_text(trace.final, database)
    if chart is None:
        print("\nThe generated DVQ could not be rendered against this database.")
        return
    print(f"\n{chart.summary()}")
    print(chart.ascii_render(width=40, max_rows=10))
    print("\nVega-Lite specification:")
    print(chart.spec.to_json())


if __name__ == "__main__":
    main()
