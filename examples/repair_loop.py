"""The execution-guided repair loop: from "no chart" to a rendered chart.

GRED's final candidate sometimes fails to execute — the classic cause is a
column that exists in *a* table of the database but not in the table the
query reads.  With `GREDConfig(max_repair_rounds=...)` the pipeline gains an
`ExecutionGuidedRepairStage`: the candidate is executed on the configured
backend and, on failure, the structured `ExecutionOutcome` (category +
missing identifiers + engine message) is fed back into the annotation-based
debugger for another round.

This example:

1. prepares two otherwise-identical pipelines (repair off / repair on);
2. finds questions whose candidate initially fails and shows the per-stage
   artifact history of the repaired trace;
3. compares the execution rate of both pipelines on the hardest test set.

Run with:  PYTHONPATH=src python examples/repair_loop.py
"""

from repro import GRED, GREDConfig, build_corpus
from repro.evaluation import ModelEvaluator
from repro.robustness.variants import RobustnessSuiteBuilder, VariantKind


def main():
    dataset = build_corpus(scale=0.08, seed=7)
    suite = RobustnessSuiteBuilder().build(dataset)
    hard_set = suite.variant(VariantKind.BOTH)  # questions AND schemas perturbed

    baseline = GRED(
        GREDConfig(top_k=10, use_debugger=False, verify_execution=True)
    ).fit(dataset.train, dataset.catalog)
    repairing = GRED(
        GREDConfig(top_k=10, use_debugger=False, verify_execution=True, max_repair_rounds=2)
    ).fit(dataset.train, dataset.catalog)
    print(f"baseline plan : {baseline.plan.describe()}")
    print(f"repairing plan: {repairing.plan.describe()}\n")

    # -- one repaired trace, stage by stage ---------------------------------
    for example in hard_set.examples:
        database = suite.catalog.get(example.db_id)
        trace = repairing.trace(example.nlq, database)
        if trace.repair_rounds:
            print(f"NLQ: {example.nlq}")
            for record in trace.records:
                marker = "*" if record.changed else " "
                print(f"  {marker} {record.stage:<8} {record.dvq}")
                if record.detail:
                    print(f"             ({record.detail})")
            print(f"  executes: {trace.executes} after {trace.repair_rounds} round(s)\n")
            break

    # -- execution rate with and without the loop ---------------------------
    evaluator = ModelEvaluator(limit=60, execution_backend="interpreter")
    off = evaluator.evaluate(baseline, hard_set, model_name=baseline.name)
    on = evaluator.evaluate(repairing, hard_set, model_name=repairing.name)
    print(f"execution rate without repair: {off.execution_rate:.1%}")
    print(f"execution rate with repair   : {on.execution_rate:.1%}")
    print(f"repair activity              : {on.repair_summary}")


if __name__ == "__main__":
    main()
