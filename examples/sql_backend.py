"""Choosing an execution backend: compile a DVQ to SQL and run it on SQLite.

Demonstrates the pluggable execution layer added in `repro.sql`:

1. compile a DVQ to a parameterised SQL statement with `DVQToSQLCompiler`;
2. execute it on both engines (`InterpreterBackend` is the reference oracle,
   `SQLiteBackend` the fast engine) and check they agree;
3. time both on a larger table to see why the SQL backend exists.

Run with:  PYTHONPATH=src python examples/sql_backend.py
"""

import time

from repro.database import DataGenerator
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.executor import InterpreterBackend
from repro.sql import DVQToSQLCompiler, SQLiteBackend
from repro.vegalite import ChartRenderer


def build_database(rows_per_table):
    schema = build_schema(
        "shop",
        [
            (
                "orders",
                [
                    ("ORDER_ID", ColumnType.NUMBER, "id"),
                    ("PRODUCT", ColumnType.TEXT, "product"),
                    ("CITY", ColumnType.TEXT, "city"),
                    ("AMOUNT", ColumnType.NUMBER, "price"),
                    ("ORDERED_ON", ColumnType.DATE, "date"),
                ],
            )
        ],
    )
    return DataGenerator(seed=29).populate(schema, rows_per_table=rows_per_table)


def main():
    database = build_database(rows_per_table=200)
    query = parse_dvq(
        "Visualize BAR SELECT PRODUCT , AVG(AMOUNT) FROM orders "
        "WHERE AMOUNT > 100 GROUP BY PRODUCT ORDER BY AVG(AMOUNT) DESC LIMIT 5"
    )

    # 1. what the compiler produces
    compiled = DVQToSQLCompiler().compile(query, database.schema)
    print("compiled SQL:")
    print(f"  {compiled.sql}")
    print(f"  params: {compiled.params}")

    # 2. both backends return identical normalised results
    interpreter = InterpreterBackend()
    sqlite = SQLiteBackend()  # or: resolve_backend("sqlite")
    expected = interpreter.execute(query, database)
    actual = sqlite.execute(query, database)
    assert expected.rows == actual.rows and expected.columns == actual.columns
    print("\ntop products by average order value (identical on both engines):")
    for product, average in actual.rows:
        print(f"  {product:<12} {average:8.1f}")

    # the renderer accepts any backend
    chart = ChartRenderer(backend=sqlite).render(query, database)
    print(f"\n{chart.summary()}")

    # 3. why: the interpreter is row-at-a-time Python, SQLite is an engine
    large = build_database(rows_per_table=20_000)
    started = time.perf_counter()
    interpreter.execute(query, large)
    interpreted = time.perf_counter() - started
    sqlite.execute(query, large)  # first call pays the bulk load
    started = time.perf_counter()
    sqlite.execute(query, large)
    engine = time.perf_counter() - started
    print(
        f"\non a 20k-row table: interpreter {interpreted * 1e3:.0f} ms, "
        f"sqlite {engine * 1e3:.1f} ms ({interpreted / engine:.0f}x)"
    )


if __name__ == "__main__":
    main()
