"""The parallel pipeline's determinism contract, kernel by kernel.

Every partitioned/parallel kernel in :mod:`repro.executor.parallel` must
return exactly what its serial counterpart would — for any worker count and
any morsel split — or decline with ``None``.  These tests pin that contract
three ways: direct kernel-vs-serial-kernel equivalence (including the merge
edge cases: AVG's order-exact fallback, DISTINCT re-dedup, empty partitions,
single-group skew, NaN-led MIN/MAX), a worker-count-invariance sweep of full
query results over the fuzz corpora, and the cost-based ``parallel`` hint
plumbing (threshold rule, plan explain, engine bypass on ``parallel=False``).
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

import repro.executor.columnar as columnar_module
from repro.database.typed import build_typed_column
from repro.executor import ColumnarBackend, InterpreterBackend
from repro.executor.columnar import _vector_join_indices
from repro.executor.functions import apply_aggregate, grouped_aggregate_vector
from repro.executor.ordering import encode_sort_key, sort_order, topk_order
from repro.executor.parallel import (
    morsel_ranges,
    parallel_encode,
    parallel_group_ids,
    parallel_grouped_aggregate,
    parallel_topk,
    partitioned_join_indices,
    partitioned_sort,
)
from repro.plan.cost import PARALLEL_ROW_THRESHOLD, CostModel
from repro.plan.nodes import Aggregate, Join, Limit, Sort, iter_nodes
from repro.plan.optimizer import OptimizerConfig
from repro.runtime.runner import BatchRunner
from repro.workload import SchemaGraphConfig, WorkloadGenerator, build_workload_database

WORKER_COUNTS = (1, 2, 4, 8)


def serial_group_ids(codes: np.ndarray):
    """The serial first-seen encode (mirrors ``ColumnarEngine._group_ids``)."""
    _, first_idx, inverse = np.unique(codes, return_index=True, return_inverse=True)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(order.size, dtype=np.intp)
    rank[order] = np.arange(order.size)
    return rank[inverse], first_idx[order], order.size


def null_coded(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Collapse (values, mask) into one code array where NULL is a value."""
    coded = values.astype(np.float64).copy()
    coded[mask] = np.inf  # a sentinel no generated value uses
    return coded


# -- group encode ------------------------------------------------------------


class TestParallelEncode:
    @pytest.mark.parametrize("workers", (2, 4, 8))
    @pytest.mark.parametrize("morsel", (1, 7, 64))
    def test_matches_serial_first_seen_encode(self, workers, morsel):
        rng = np.random.default_rng(20 * workers + morsel)
        length = 500
        values = rng.integers(0, 40, size=length).astype(np.float64)
        mask = rng.random(length) < 0.2
        runner = BatchRunner(max_workers=workers)
        ranges = morsel_ranges(length, morsel)
        encoded = parallel_encode(values, mask, ranges, runner)
        assert encoded is not None
        gid, first_rows, count = encoded
        exp_gid, exp_first, exp_count = serial_group_ids(null_coded(values, mask))
        assert count == exp_count
        np.testing.assert_array_equal(gid, exp_gid)
        np.testing.assert_array_equal(first_rows, exp_first)

    def test_multi_key_combine_matches_serial(self):
        rng = np.random.default_rng(3)
        length = 400
        key_a = rng.integers(0, 6, size=length).astype(np.float64)
        key_b = rng.integers(0, 7, size=length).astype(np.float64)
        mask_b = rng.random(length) < 0.15
        runner = BatchRunner(max_workers=4)
        ranges = morsel_ranges(length, 17)
        encoded = parallel_group_ids(
            [(key_a, None), (key_b, mask_b)], ranges, runner
        )
        assert encoded is not None
        gid, _, count = encoded
        # serial reference: combine per-key codes pairwise, re-rank first-seen
        code_a, _, count_a = serial_group_ids(key_a)
        code_b, _, _ = serial_group_ids(null_coded(key_b, mask_b))
        exp_gid, _, exp_count = serial_group_ids(code_a * 1000 + code_b)
        assert count == exp_count
        np.testing.assert_array_equal(gid, exp_gid)

    def test_text_keys_match_serial(self):
        rng = random.Random(9)
        values = [f"name {rng.randrange(12)}" for _ in range(300)]
        column = build_typed_column(
            [None if rng.random() < 0.1 else value for value in values]
        )
        runner = BatchRunner(max_workers=4)
        ranges = morsel_ranges(len(column), 23)
        encoded = parallel_encode(column.data, column.mask, ranges, runner)
        assert encoded is not None
        gid = encoded[0]
        # serial reference over the object values (dict first-seen codes)
        seen = {}
        expected = [
            seen.setdefault(value, len(seen)) for value in column.objects.tolist()
        ]
        np.testing.assert_array_equal(gid, np.asarray(expected))


# -- partial-aggregate merges ------------------------------------------------


def run_both(name, column, gid, group_count, distinct, morsel, workers=4):
    """(parallel result, serial kernel result) for one aggregate setup."""
    runner = BatchRunner(max_workers=workers)
    ranges = morsel_ranges(len(column), morsel)
    parallel = parallel_grouped_aggregate(
        name, column, gid, group_count, distinct, ranges, runner
    )
    serial = grouped_aggregate_vector(name, column, gid, group_count, distinct=distinct)
    return parallel, serial


def assert_values_equal(actual, expected):
    assert actual is not None
    assert len(actual) == len(expected)
    for left, right in zip(actual, expected):
        if isinstance(left, float) and isinstance(right, float) and math.isnan(left):
            assert math.isnan(right)
        else:
            assert left == right and type(left) is type(right)


class TestPartialAggregateMerge:
    def test_avg_merge_on_non_integral_values_is_order_exact(self):
        # fractional values make per-morsel partial sums non-associative, so
        # the kernel must fall back to the serial row-order fold — the result
        # has to be bit-identical, not merely close
        rng = np.random.default_rng(11)
        values = (rng.random(600) * 10 - 5).tolist()
        column = build_typed_column(values)
        gid = np.asarray(rng.integers(0, 9, size=600), dtype=np.intp)
        for morsel in (1, 13, 100):
            parallel, serial = run_both("AVG", column, gid, 9, False, morsel)
            assert_values_equal(parallel, serial)

    def test_integer_sum_merges_partials_exactly(self):
        rng = np.random.default_rng(12)
        values = rng.integers(-1000, 1000, size=500).tolist()
        column = build_typed_column(
            [None if index % 17 == 0 else value for index, value in enumerate(values)]
        )
        gid = np.asarray(rng.integers(0, 5, size=500), dtype=np.intp)
        for name in ("SUM", "AVG"):
            parallel, serial = run_both(name, column, gid, 5, False, 31)
            assert_values_equal(parallel, serial)

    def test_distinct_merges_re_dedupe_across_morsels(self):
        # the same (group, value) pair lands in several morsels; the global
        # re-dedup must count/sum it once, like the serial single-pass dedupe
        rng = np.random.default_rng(13)
        values = rng.integers(0, 8, size=400).astype(float).tolist()
        column = build_typed_column(values)
        gid = np.asarray(rng.integers(0, 4, size=400), dtype=np.intp)
        for name in ("COUNT", "SUM", "AVG"):
            parallel, serial = run_both(name, column, gid, 4, True, 9)
            assert_values_equal(parallel, serial)

    def test_empty_partitions_and_groups(self):
        # group 2 never occurs; morsel size 4 gives several morsels with no
        # rows of some groups — partials must merge to the serial None/0
        column = build_typed_column([1.0, None, 3.0, 1.0, None, 7.0, 2.0, 2.0])
        gid = np.asarray([0, 0, 1, 1, 3, 3, 4, 4], dtype=np.intp)
        for name, distinct in (
            ("COUNT", False), ("COUNT", True), ("SUM", False),
            ("AVG", False), ("MIN", False), ("MAX", False),
        ):
            parallel, serial = run_both(name, column, gid, 5, distinct, 4)
            assert_values_equal(parallel, serial)

    def test_single_group_skew(self):
        # every row in one group: the worst-case merge fan-in (every morsel
        # contributes a partial for the same group)
        rng = np.random.default_rng(14)
        values = (rng.random(300) * 100).tolist()
        column = build_typed_column(values)
        gid = np.zeros(300, dtype=np.intp)
        for name in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            parallel, serial = run_both(name, column, gid, 1, False, 7)
            assert_values_equal(parallel, serial)

    @pytest.mark.parametrize("morsel", (3, 10, 50))
    def test_nan_min_max_matches_scalar_fold(self, morsel):
        # NaN loses every comparison in the scalar fold: a group keeps NaN
        # only when NaN is its first value.  Split points around the NaN rows
        # must not change that.
        values = [
            float("nan"), 2.0, 5.0, float("nan"), 1.0,
            3.0, float("nan"), None, 4.0, float("nan"),
        ] * 12
        column = build_typed_column(values)
        gid = np.asarray([index % 4 for index in range(len(values))], dtype=np.intp)
        for name in ("MIN", "MAX"):
            parallel, serial = run_both(name, column, gid, 4, False, morsel)
            assert_values_equal(parallel, serial)
            # and the serial vector kernel itself matches the scalar fold
            members = {g: [] for g in range(4)}
            for row, group in enumerate(gid.tolist()):
                members[group].append(column.objects[row])
            expected = [apply_aggregate(name, members[g]) for g in range(4)]
            assert_values_equal(serial, expected)

    def test_nan_count_distinct_counts_identity_distinct_nans(self):
        nan = float("nan")
        values = [nan, 1.0, nan, 2.0, float("nan"), 1.0, None, float("nan")]
        column = build_typed_column(values)
        gid = np.asarray([0, 0, 0, 1, 1, 1, 0, 0], dtype=np.intp)
        parallel, serial = run_both("COUNT", column, gid, 2, True, 2)
        # scalar semantics: set() dedups NaN by identity, so group 0 holds
        # {nan(id a), 1.0, nan(id b)} and group 1 {2.0, nan(id c), 1.0}
        members = {0: [], 1: []}
        for row, group in enumerate(gid.tolist()):
            members[group].append(column.objects[row])
        expected = [
            apply_aggregate("COUNT", members[g], distinct=True) for g in (0, 1)
        ]
        assert serial == expected
        assert parallel == expected

    def test_declines_mirror_the_serial_kernel(self):
        runner = BatchRunner(max_workers=2)
        mixed = build_typed_column([1, "two", 3, "four"] * 10)
        gid = np.zeros(40, dtype=np.intp)
        ranges = morsel_ranges(40, 10)
        for name in ("SUM", "MIN"):
            assert grouped_aggregate_vector(name, mixed, gid, 1) is None
            assert (
                parallel_grouped_aggregate(name, mixed, gid, 1, False, ranges, runner)
                is None
            )


# -- partitioned join --------------------------------------------------------


class TestPartitionedJoin:
    @pytest.mark.parametrize("workers", (2, 4, 8))
    def test_matches_sort_kernel_on_number_keys(self, workers):
        rng = random.Random(workers)
        probe = build_typed_column(
            [None if rng.random() < 0.05 else rng.randrange(200) for _ in range(3000)]
        )
        build = build_typed_column(
            [None if rng.random() < 0.05 else rng.randrange(200) for _ in range(2500)]
        )
        expected = _vector_join_indices(probe, build)
        runner = BatchRunner(max_workers=workers)
        actual = partitioned_join_indices(probe, build, runner, morsel_size=100)
        assert actual is not None
        np.testing.assert_array_equal(actual[0], expected[0])
        np.testing.assert_array_equal(actual[1], expected[1])

    def test_matches_sort_kernel_on_text_keys(self):
        rng = random.Random(5)
        probe = build_typed_column([f"key {rng.randrange(60)}" for _ in range(1500)])
        build = build_typed_column([f"key {rng.randrange(80)}" for _ in range(1200)])
        expected = _vector_join_indices(probe, build)
        runner = BatchRunner(max_workers=4)
        actual = partitioned_join_indices(probe, build, runner, morsel_size=64)
        assert actual is not None
        np.testing.assert_array_equal(actual[0], expected[0])
        np.testing.assert_array_equal(actual[1], expected[1])

    def test_declines_on_small_or_degenerate_inputs(self):
        runner = BatchRunner(max_workers=4)
        small = build_typed_column(list(range(10)))
        # too small to split into two partitions at this morsel size
        assert partitioned_join_indices(small, small, runner, morsel_size=100) is None
        constant = build_typed_column([7] * 400)
        # every key equal: partitioning degenerates to one populated
        # partition, but the (cross-join) result must still be exact
        degenerate = partitioned_join_indices(constant, constant, runner, morsel_size=100)
        expected = _vector_join_indices(constant, constant)
        np.testing.assert_array_equal(degenerate[0], expected[0])
        np.testing.assert_array_equal(degenerate[1], expected[1])
        nan_keys = build_typed_column([1.0, float("nan")] * 2000)
        assert (
            partitioned_join_indices(nan_keys, nan_keys, runner, morsel_size=100)
            is None
        )

    def test_mixed_kind_sides_are_an_empty_join(self):
        runner = BatchRunner(max_workers=2)
        numbers = build_typed_column(list(range(2000)))
        text = build_typed_column([f"v{i}" for i in range(2000)])
        result = partitioned_join_indices(numbers, text, runner, morsel_size=100)
        assert result is not None
        assert result[0].size == 0 and result[1].size == 0


# -- partitioned sort / parallel top-k ---------------------------------------


def _sort_key_corpus(seed: int, length: int):
    """(primary, secondary) uint64 sort codes with duplicates, NaN and NULL."""
    rng = random.Random(seed)
    numbers = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.08:
            numbers.append(None)
        elif roll < 0.16:
            numbers.append(float("nan"))
        elif roll < 0.24:
            numbers.append(rng.choice([-0.0, 0.0, float("inf"), -float("inf")]))
        else:
            # a small value pool so pivot boundaries land on heavy ties
            numbers.append(rng.choice([-3.5, 2.25, float(rng.randrange(12))]))
    texts = [
        None if rng.random() < 0.1 else f"Label {rng.randrange(7)}"
        for _ in range(length)
    ]
    primary = encode_sort_key(build_typed_column(numbers))
    secondary = encode_sort_key(build_typed_column(texts))
    assert primary is not None and secondary is not None
    return primary, secondary


class TestPartitionedSort:
    @pytest.mark.parametrize("workers", (2, 4, 8))
    @pytest.mark.parametrize("morsel", (16, 50, 100))
    def test_matches_serial_sort_order(self, workers, morsel):
        primary, secondary = _sort_key_corpus(workers * 100 + morsel, 1000)
        runner = BatchRunner(max_workers=workers)
        actual = partitioned_sort(primary, (secondary,), runner, morsel)
        assert actual is not None
        np.testing.assert_array_equal(actual, sort_order(primary, (secondary,)))

    def test_descending_via_inverted_codes(self):
        primary, secondary = _sort_key_corpus(1, 800)
        runner = BatchRunner(max_workers=4)
        actual = partitioned_sort(~primary, (secondary,), runner, 64)
        assert actual is not None
        np.testing.assert_array_equal(actual, sort_order(~primary, (secondary,)))

    def test_no_secondaries_breaks_ties_by_row_order(self):
        primary, _ = _sort_key_corpus(2, 600)
        runner = BatchRunner(max_workers=4)
        actual = partitioned_sort(primary, (), runner, 50)
        assert actual is not None
        np.testing.assert_array_equal(actual, sort_order(primary, ()))

    def test_declines_when_too_small_to_partition(self):
        primary, secondary = _sort_key_corpus(3, 50)
        runner = BatchRunner(max_workers=4)
        assert partitioned_sort(primary, (secondary,), runner, 100) is None

    def test_constant_keys_degenerate_but_stay_exact(self):
        # every code equal: one populated partition, but the stable
        # (row-order) permutation must still match the serial kernel
        primary = np.full(400, np.uint64(7))
        runner = BatchRunner(max_workers=4)
        actual = partitioned_sort(primary, (), runner, 100)
        if actual is not None:
            np.testing.assert_array_equal(actual, sort_order(primary, ()))


class TestParallelTopk:
    @pytest.mark.parametrize("workers", (2, 4, 8))
    @pytest.mark.parametrize("count", (1, 7, 64, 999, 1000, 1500))
    def test_matches_serial_topk_order(self, workers, count):
        primary, secondary = _sort_key_corpus(workers, 1000)
        runner = BatchRunner(max_workers=workers)
        ranges = morsel_ranges(1000, 100)
        actual = parallel_topk(primary, [secondary], count, ranges, runner)
        assert actual is not None
        np.testing.assert_array_equal(
            actual, topk_order(primary, [secondary], count)
        )

    def test_pivot_boundary_ties_are_cut_identically(self):
        # three distinct codes, so the k-th smallest is tied with hundreds of
        # rows across every morsel — the union-of-candidates superset must
        # still reproduce the serial stable cut exactly
        rng = np.random.default_rng(8)
        primary = rng.integers(0, 3, size=900).astype(np.uint64)
        secondary = rng.integers(0, 2, size=900).astype(np.uint64)
        runner = BatchRunner(max_workers=4)
        ranges = morsel_ranges(900, 64)
        for count in (5, 300, 600):
            actual = parallel_topk(primary, [secondary], count, ranges, runner)
            np.testing.assert_array_equal(
                actual, topk_order(primary, [secondary], count)
            )

    def test_declines_on_degenerate_inputs(self):
        primary, secondary = _sort_key_corpus(4, 300)
        runner = BatchRunner(max_workers=2)
        assert parallel_topk(primary, [secondary], 0, morsel_ranges(300, 50), runner) is None
        # a single morsel has nothing to parallelise
        assert parallel_topk(primary, [secondary], 5, morsel_ranges(300, 300), runner) is None


# -- worker-count invariance over the fuzz corpora ---------------------------


@pytest.fixture(scope="module")
def star_database():
    return build_workload_database(
        SchemaGraphConfig(seed=7, table_count=8, topology="star", name="par_db"),
        total_rows=2_000,
    )


@pytest.fixture(scope="module")
def null_heavy_database():
    return build_workload_database(
        SchemaGraphConfig(
            seed=13, table_count=6, topology="snowflake", name="par_null_db"
        ),
        total_rows=1_500,
        fk_null_fraction=0.25,
    )


class TestWorkerCountInvariance:
    def _sweep(self, database, query_count=60, morsel_size=64):
        serial = ColumnarBackend(optimize=True, cost_based=False)
        queries, baselines = [], []
        for seed in range(query_count):
            query = WorkloadGenerator(seed=seed).generate(database)
            try:
                baselines.append(serial.execute(query, database))
            except Exception:
                continue
            queries.append(query)
        assert len(queries) >= query_count // 2
        for workers in WORKER_COUNTS:
            backend = ColumnarBackend(
                optimize=True,
                cost_based=False,
                max_workers=workers,
                morsel_size=morsel_size,
            )
            for query, expected in zip(queries, baselines):
                actual = backend.execute(query, database)
                assert actual.columns == expected.columns, (workers, query)
                assert actual.rows == expected.rows, (workers, query)

    def test_star_corpus_is_worker_count_invariant(self, star_database):
        self._sweep(star_database)

    def test_null_heavy_corpus_is_worker_count_invariant(self, null_heavy_database):
        self._sweep(null_heavy_database, morsel_size=32)

    def test_interpreter_oracle_agrees(self, star_database):
        oracle = InterpreterBackend()
        backend = ColumnarBackend(
            optimize=True, cost_based=False, max_workers=4, morsel_size=64
        )
        for seed in range(30):
            query = WorkloadGenerator(seed=seed).generate(star_database)
            try:
                expected = oracle.execute(query, star_database)
            except Exception:
                continue
            actual = backend.execute(query, star_database)
            assert actual.rows == expected.rows, query

    def test_sort_heavy_corpus_is_worker_count_invariant(self, star_database):
        # every query carries an ORDER BY and most a LIMIT, so this sweep
        # drives partitioned_sort / parallel_topk rather than the scan kernels
        oracle = InterpreterBackend()
        queries, baselines = [], []
        for seed in range(40):
            query = WorkloadGenerator(
                seed=seed, order_probability=1.0, limit_probability=0.6
            ).generate(star_database)
            try:
                baselines.append(oracle.execute(query, star_database))
            except Exception:
                continue
            queries.append(query)
        assert len(queries) >= 20
        for workers in WORKER_COUNTS:
            for morsel in (32, 128):
                backend = ColumnarBackend(
                    optimize=True,
                    cost_based=False,
                    max_workers=workers,
                    morsel_size=morsel,
                )
                for query, expected in zip(queries, baselines):
                    actual = backend.execute(query, star_database)
                    assert actual.rows == expected.rows, (workers, morsel, query)


# -- cost-based operator choice ----------------------------------------------


class _InflatedCostModel(CostModel):
    """A cost model that pretends every input is huge (forces parallel=True)."""

    def cardinality(self, node):  # noqa: D102 - test double
        return PARALLEL_ROW_THRESHOLD * 2


class TestCostBasedParallelChoice:
    def test_parallel_ops_is_a_default_rule(self):
        assert "parallel_ops" in OptimizerConfig().rule_names()
        assert "parallel_ops" not in OptimizerConfig(parallel_ops=False).rule_names()

    def _planned(self, database, backend):
        from repro.dvq import parse_dvq

        table = database.schema.tables[0]
        key = table.columns[1].name
        query = parse_dvq(
            f"Visualize BAR SELECT {key} , COUNT(*) FROM {table.name} "
            f"GROUP BY {key}"
        )
        return backend.plan(query, database)

    def test_small_inputs_are_pinned_serial(self, star_database):
        backend = ColumnarBackend(optimize=True, cost_based=True)
        plan = self._planned(star_database, backend)
        aggregates = [n for n in iter_nodes(plan) if isinstance(n, Aggregate)]
        assert aggregates and all(n.parallel is False for n in aggregates)

    def test_unhinted_plans_stay_unhinted_without_statistics(self, star_database):
        backend = ColumnarBackend(optimize=True, cost_based=False)
        plan = self._planned(star_database, backend)
        for node in iter_nodes(plan):
            if isinstance(node, (Aggregate, Join)):
                assert node.parallel is None

    def test_large_estimates_flip_the_hint_and_the_explain(self, star_database):
        from repro.plan.optimizer import choose_parallel_operators

        backend = ColumnarBackend(optimize=True, cost_based=True)
        plan = self._planned(star_database, backend)
        inflated = choose_parallel_operators(plan, _InflatedCostModel(star_database))
        aggregates = [n for n in iter_nodes(inflated) if isinstance(n, Aggregate)]
        assert aggregates and all(n.parallel is True for n in aggregates)
        assert any(", parallel" in node.describe() for node in aggregates)

    def test_threshold_boundary(self, star_database):
        model = CostModel(star_database)
        backend = ColumnarBackend(optimize=True, cost_based=False)
        plan = self._planned(star_database, backend)
        aggregate = next(n for n in iter_nodes(plan) if isinstance(n, Aggregate))
        # a ~2k-row corpus sits far below the 100k-row break-even
        assert model.cardinality(aggregate.child) < PARALLEL_ROW_THRESHOLD
        assert not model.parallel_profitable(aggregate)

    def _sorted_plan(self, database, backend):
        from repro.dvq import parse_dvq

        table = database.schema.tables[0]
        text_col = table.columns[1].name
        number_col = table.columns[2].name
        query = parse_dvq(
            f"Visualize BAR SELECT {text_col} , {number_col} FROM {table.name} "
            f"ORDER BY {number_col} DESC LIMIT 5"
        )
        return backend.plan(query, database)

    def test_small_sorts_are_pinned_serial(self, star_database):
        backend = ColumnarBackend(optimize=True, cost_based=True)
        plan = self._sorted_plan(star_database, backend)
        nodes = [n for n in iter_nodes(plan) if isinstance(n, (Sort, Limit))]
        assert nodes and all(n.parallel is False for n in nodes)

    def test_inflated_sort_estimates_flip_the_hint_and_the_explain(
        self, star_database
    ):
        from repro.plan.optimizer import choose_parallel_operators

        backend = ColumnarBackend(optimize=True, cost_based=True)
        plan = self._sorted_plan(star_database, backend)
        inflated = choose_parallel_operators(plan, _InflatedCostModel(star_database))
        sorts = [n for n in iter_nodes(inflated) if isinstance(n, Sort)]
        assert sorts and all(n.parallel is True for n in sorts)
        assert any(", parallel" in n.describe() for n in sorts)

    def test_sort_profitability_uses_the_n_log_n_break_even(self, star_database):
        model = CostModel(star_database)
        backend = ColumnarBackend(optimize=True, cost_based=False)
        plan = self._sorted_plan(star_database, backend)
        sort = next(n for n in iter_nodes(plan) if isinstance(n, Sort))
        # a ~2k-row corpus is far below the 100k-row-equivalent sort work
        assert model.cardinality(sort.child) < PARALLEL_ROW_THRESHOLD
        assert not model.parallel_profitable(sort)

    def test_engine_skips_sort_kernels_when_pinned_serial(
        self, star_database, monkeypatch
    ):
        calls = []
        real_psort = columnar_module.partitioned_sort
        real_ptopk = columnar_module.parallel_topk

        def spy_psort(*args, **kwargs):
            calls.append("sort")
            return real_psort(*args, **kwargs)

        def spy_ptopk(*args, **kwargs):
            calls.append("topk")
            return real_ptopk(*args, **kwargs)

        monkeypatch.setattr(columnar_module, "partitioned_sort", spy_psort)
        monkeypatch.setattr(columnar_module, "parallel_topk", spy_ptopk)
        pinned = ColumnarBackend(
            optimize=True, cost_based=True, max_workers=4, morsel_size=32
        )
        unhinted = ColumnarBackend(
            optimize=True, cost_based=False, max_workers=4, morsel_size=32
        )
        queries = [
            WorkloadGenerator(
                seed=seed, order_probability=1.0, limit_probability=0.5
            ).generate(star_database)
            for seed in range(20)
        ]
        for query in queries:
            try:
                pinned.execute(query, star_database)
            except Exception:
                continue
        assert not calls  # every sort pinned serial at this scale
        for query in queries:
            try:
                unhinted.execute(query, star_database)
            except Exception:
                continue
        assert calls  # the runtime default engages the sort kernels

    def test_engine_skips_parallel_kernels_when_pinned_serial(
        self, star_database, monkeypatch
    ):
        calls = []
        real = columnar_module.parallel_group_ids

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(columnar_module, "parallel_group_ids", spy)
        pinned = ColumnarBackend(
            optimize=True, cost_based=True, max_workers=4, morsel_size=32
        )
        unhinted = ColumnarBackend(
            optimize=True, cost_based=False, max_workers=4, morsel_size=32
        )
        queries = [
            WorkloadGenerator(seed=seed).generate(star_database) for seed in range(20)
        ]
        for query in queries:
            try:
                pinned.execute(query, star_database)
            except Exception:
                continue
        assert not calls  # every operator pinned serial at this scale
        for query in queries:
            try:
                unhinted.execute(query, star_database)
            except Exception:
                continue
        assert calls  # size-based runtime default engages the kernels
