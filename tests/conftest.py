"""Shared fixtures: a small corpus, its robustness suite and a toy database."""

from __future__ import annotations

import pytest

from repro.database import DataGenerator
from repro.database.schema import ColumnType, build_schema
from repro.nvbench.generator import CorpusConfig, NVBenchGenerator
from repro.robustness.variants import RobustnessSuiteBuilder


@pytest.fixture(scope="session")
def small_dataset():
    """A small (but fully representative) synthetic nvBench corpus."""
    return NVBenchGenerator(CorpusConfig(scale=0.05, seed=13)).generate()


@pytest.fixture(scope="session")
def robustness_suite(small_dataset):
    """The nvBench-Rob suite built from the small corpus' test split."""
    return RobustnessSuiteBuilder().build(small_dataset)


@pytest.fixture(scope="session")
def hr_database():
    """A populated HR-style database used by executor / renderer tests."""
    schema = build_schema(
        "hr_test",
        [
            (
                "employees",
                [
                    ("EMPLOYEE_ID", ColumnType.NUMBER, "id"),
                    ("FIRST_NAME", ColumnType.TEXT, "first_name"),
                    ("LAST_NAME", ColumnType.TEXT, "last_name"),
                    ("SALARY", ColumnType.NUMBER, "salary"),
                    ("HIRE_DATE", ColumnType.DATE, "date"),
                    ("DEPARTMENT_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "departments",
                [
                    ("DEPARTMENT_ID", ColumnType.NUMBER, "id"),
                    ("DEPARTMENT_NAME", ColumnType.TEXT, "department"),
                    ("BUDGET", ColumnType.NUMBER, "budget"),
                ],
            ),
        ],
        foreign_keys=[("employees", "DEPARTMENT_ID", "departments", "DEPARTMENT_ID")],
    )
    return DataGenerator(seed=3, rows_per_table=30).populate(schema)
