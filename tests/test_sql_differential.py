"""Differential test harness: every execution engine vs the row interpreter.

A seeded :class:`~repro.dvq.generate.RandomDVQGenerator` produces hundreds of
queries from the portable DVQ subset — across chart types, aggregates,
binning, joins, predicates and top-k — over randomly generated databases
(with NULLs injected into every non-primary-key column — including foreign
keys, since all engines share SQL's NULL-join semantics).  Every query must
execute to an *identical* :class:`~repro.executor.executor.ExecutionResult`
(columns, rows and row order after normalisation) on every engine, with the
legacy row-at-a-time interpreter as the reference oracle.  The engine axis
covers the full matrix the configuration knobs expose: the SQLite backend,
and the columnar plan engine with the optimizer on and off, with the
cost-based rules on (``columnar-cbo``, the engine default) and off
(``columnar``, rule-based rewrites only) and with the NumPy kernels on and
off (``columnar-python``); rule-by-rule ablations live in
``tests/test_plan.py``.

Run this suite alone with ``make test-diff`` (it is marked
``differential``).
"""

from __future__ import annotations

import functools
import random

import pytest

from repro.database import DataGenerator
from repro.database.database import Database
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq, serialize_dvq
from repro.dvq.generate import RandomDVQGenerator
from repro.executor import ColumnarBackend, InterpreterBackend
from repro.sql import DVQToSQLCompiler, SQLiteBackend

pytestmark = pytest.mark.differential

#: The engine x optimizer axis: every non-reference engine must match the
#: interpreter row-for-row.  Fresh instances per test keep engine state
#: (SQLite connection caches) isolated.
ENGINE_FACTORIES = {
    "sqlite": SQLiteBackend,
    "columnar-cbo": lambda: ColumnarBackend(optimize=True),
    "columnar": lambda: ColumnarBackend(optimize=True, cost_based=False),
    "columnar-noopt": lambda: ColumnarBackend(optimize=False),
    "columnar-python": lambda: ColumnarBackend(optimize=True, vectorize=False),
}


def test_matrix_covers_the_vectorized_engine():
    """The default columnar engine runs the NumPy kernels; the ``-python``
    entry pins the scalar fallback path so both halves of every kernel's
    decline contract stay under differential test."""
    assert ColumnarBackend().vectorize
    engines = {name: factory() for name, factory in ENGINE_FACTORIES.items()}
    assert engines["columnar"].vectorize
    assert not engines["columnar-python"].vectorize


def _engine_params():
    return [pytest.param(factory, id=name) for name, factory in ENGINE_FACTORIES.items()]


def _hr_schema():
    return build_schema(
        "hr_diff",
        [
            (
                "employees",
                [
                    ("EMPLOYEE_ID", ColumnType.NUMBER, "id"),
                    ("FIRST_NAME", ColumnType.TEXT, "first_name"),
                    ("LAST_NAME", ColumnType.TEXT, "last_name"),
                    ("SALARY", ColumnType.NUMBER, "salary"),
                    ("HIRE_DATE", ColumnType.DATE, "date"),
                    ("ACTIVE", ColumnType.BOOLEAN, "flag"),
                    ("DEPARTMENT_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "departments",
                [
                    ("DEPARTMENT_ID", ColumnType.NUMBER, "id"),
                    ("DEPARTMENT_NAME", ColumnType.TEXT, "department"),
                    ("CITY", ColumnType.TEXT, "city"),
                    ("BUDGET", ColumnType.NUMBER, "budget"),
                ],
            ),
        ],
        foreign_keys=[("employees", "DEPARTMENT_ID", "departments", "DEPARTMENT_ID")],
    )


def _store_schema():
    return build_schema(
        "store_diff",
        [
            (
                "products",
                [
                    ("PRODUCT_ID", ColumnType.NUMBER, "id"),
                    ("PRODUCT_NAME", ColumnType.TEXT, "product"),
                    ("CATEGORY", ColumnType.TEXT, "category"),
                    ("PRICE", ColumnType.NUMBER, "price"),
                    ("IN_STOCK", ColumnType.BOOLEAN, "flag"),
                ],
            ),
            (
                "orders",
                [
                    ("ORDER_ID", ColumnType.NUMBER, "id"),
                    ("PRODUCT_ID", ColumnType.NUMBER, "id"),
                    ("ORDER_DATE", ColumnType.DATE, "date"),
                    ("QUANTITY", ColumnType.NUMBER, "count"),
                    ("STATUS", ColumnType.TEXT, "status"),
                ],
            ),
        ],
        foreign_keys=[("orders", "PRODUCT_ID", "products", "PRODUCT_ID")],
    )


def _events_schema():
    return build_schema(
        "events_diff",
        [
            (
                "events",
                [
                    ("EVENT_ID", ColumnType.NUMBER, "id"),
                    ("THEME", ColumnType.TEXT, "theme"),
                    ("CITY", ColumnType.TEXT, "city"),
                    ("EVENT_DATE", ColumnType.DATE, "date"),
                    ("ATTENDANCE", ColumnType.NUMBER, "capacity"),
                    ("RATING", ColumnType.NUMBER, "rating"),
                ],
            ),
        ],
    )


def inject_nulls(database: Database, seed: int, fraction: float = 0.12) -> None:
    """Null out a fraction of non-primary-key values, seeded.

    Foreign-key columns are deliberately *included*: every engine now
    implements SQL join semantics where a NULL key never matches (not even
    another NULL), so NULL join keys are inside the portable subset and the
    corpus must exercise them.  Primary keys stay intact so FK references
    remain resolvable.
    """
    rng = random.Random(seed)
    for table in database.tables():
        for column in table.schema.columns:
            if column.is_primary:
                continue
            for row in table.rows:
                if rng.random() < fraction:
                    row[column.name] = None


#: (schema builder, datagen seed, generator seed, query count) per case.
_CASES = [
    pytest.param(_hr_schema, 11, 42, 80, id="hr"),
    pytest.param(_store_schema, 21, 7, 70, id="store"),
    pytest.param(_events_schema, 22, 3, 70, id="events"),
]

#: Queries generated over the synthetic workload schema graph (statistics
#: driven, multi-join) on top of the fixed-schema cases above.
_WORKLOAD_QUERIES = 780

#: Total queries across the suite — the acceptance bar is >= 1000.
TOTAL_QUERIES = 80 + 70 + 70 + _WORKLOAD_QUERIES


# built once per pytest run: the agreement tests and the coverage test share
# the same databases and query corpus
@functools.lru_cache(maxsize=None)
def _build_database(schema_builder, data_seed: int) -> Database:
    database = DataGenerator(seed=data_seed, rows_per_table=40).populate(schema_builder())
    inject_nulls(database, seed=data_seed)
    return database


@functools.lru_cache(maxsize=None)
def _generate_corpus(database: Database, generator_seed: int, count: int):
    generator = RandomDVQGenerator(seed=generator_seed)
    return generator.generate_many(database, count)


@pytest.mark.parametrize("engine_factory", _engine_params())
@pytest.mark.parametrize("schema_builder,data_seed,generator_seed,count", _CASES)
def test_backends_agree_on_generated_queries(
    schema_builder, data_seed, generator_seed, count, engine_factory
):
    database = _build_database(schema_builder, data_seed)
    interpreter = InterpreterBackend()
    engine = engine_factory()
    compiler = DVQToSQLCompiler()
    for query in _generate_corpus(database, generator_seed, count):
        # the harness compares through the text form: generated queries must
        # survive serialize -> parse unchanged
        text = serialize_dvq(query)
        parsed = parse_dvq(text)
        assert serialize_dvq(parsed) == text
        expected = interpreter.execute(parsed, database)
        actual = engine.execute(parsed, database)
        detail = (
            f"SQL: {compiler.compile(parsed, database.schema).sql}"
            if engine.name == "sqlite"
            else f"plan:\n{engine.plan(parsed, database).explain()}"
        )
        assert actual.columns == expected.columns, f"columns differ for {text!r}"
        assert actual.chart_type == expected.chart_type
        assert actual.rows == expected.rows, (
            f"rows differ for {text!r}\n  {detail}\n"
            f"  interpreter: {expected.rows[:8]}\n  {engine.name}: {actual.rows[:8]}"
        )


def test_suite_meets_query_budget():
    assert TOTAL_QUERIES >= 1000


# -- workload-generator corpus: synthetic schema graph, multi-join walks -----


@functools.lru_cache(maxsize=None)
def _workload_database():
    from repro.workload import SchemaGraphConfig, build_workload_database

    return build_workload_database(
        SchemaGraphConfig(seed=29, table_count=7, topology="snowflake",
                          name="workload_diff"),
        total_rows=900,
    )


@functools.lru_cache(maxsize=None)
def _workload_corpus():
    from repro.workload import WorkloadGenerator

    generator = WorkloadGenerator(seed=17, max_joins=3, join_probability=0.5,
                                  max_join_cost=400_000)
    return tuple(generator.generate_many(_workload_database(), _WORKLOAD_QUERIES))


@pytest.mark.parametrize("engine_factory", _engine_params())
def test_backends_agree_on_workload_corpus(engine_factory):
    """The statistics-driven corpus: 780 queries per engine via BatchRunner.

    The thread pool keeps the tripled corpus inside the prior CI budget —
    the SQLite engine releases the GIL, so its comparisons overlap the pure
    Python reference executions.
    """
    from repro.runtime.runner import BatchRunner

    database = _workload_database()
    interpreter = InterpreterBackend()
    engine = engine_factory()

    def check(query):
        text = serialize_dvq(query)
        parsed = parse_dvq(text)
        assert serialize_dvq(parsed) == text
        expected = interpreter.execute(parsed, database)
        actual = engine.execute(parsed, database)
        assert actual.columns == expected.columns, f"columns differ for {text!r}"
        assert actual.chart_type == expected.chart_type
        assert actual.rows == expected.rows, (
            f"rows differ for {text!r}\n"
            f"  interpreter: {expected.rows[:8]}\n  {engine.name}: {actual.rows[:8]}"
        )

    report = BatchRunner(max_workers=2).run(_workload_corpus(), check)
    failures = report.failures()
    assert not failures, f"{len(failures)} disagreements; first: {failures[0].error}"


def test_workload_corpus_covers_multi_joins_and_scale():
    queries = _workload_corpus()
    assert len(queries) == _WORKLOAD_QUERIES
    assert sum(1 for q in queries if len(q.joins) >= 2) >= 20
    assert sum(1 for q in queries if q.joins) >= 150
    assert sum(1 for q in queries if q.where is not None) >= 300
    # every reference in a multi-table scope is qualified (no ambiguity)
    for query in queries:
        if query.joins:
            for ref in query.referenced_columns():
                assert ref.table or ref.column == "*", serialize_dvq(query)


def test_generated_corpus_covers_the_feature_matrix():
    """The differential corpus genuinely exercises every DVQ feature."""
    queries = []
    for param in _CASES:
        schema_builder, data_seed, generator_seed, count = param.values
        database = _build_database(schema_builder, data_seed)
        queries.extend(_generate_corpus(database, generator_seed, count))
    queries.extend(_workload_corpus())
    assert len(queries) == TOTAL_QUERIES
    chart_types = {query.chart_type for query in queries}
    assert len(chart_types) >= 5
    assert sum(1 for query in queries if query.joins) >= 10
    assert sum(1 for query in queries if query.bin is not None) >= 10
    assert sum(1 for query in queries if query.where is not None) >= 40
    assert sum(1 for query in queries if query.order_by is not None) >= 40
    assert sum(1 for query in queries if query.limit is not None) >= 10
    assert sum(1 for query in queries if any(i.is_aggregate for i in query.select)) >= 80
    operators = {
        condition.operator.upper()
        for query in queries
        if query.where is not None
        for condition in query.where.conditions
    }
    assert {"=", "BETWEEN", "IN", "LIKE", "IS NULL"} <= operators


#: Broken DVQs per failure category, instantiated over each case's main table.
_BROKEN_TEMPLATES = [
    (
        "missing_table",
        "Visualize BAR SELECT * FROM no_such_table_xyz",
    ),
    (
        "missing_column",
        "Visualize BAR SELECT NO_SUCH_COL_XYZ , COUNT(*) FROM {table} GROUP BY NO_SUCH_COL_XYZ",
    ),
]


@pytest.mark.parametrize("engine_factory", _engine_params())
@pytest.mark.parametrize("schema_builder,data_seed,generator_seed,count", _CASES)
def test_backends_agree_on_failure_categories(
    schema_builder, data_seed, generator_seed, count, engine_factory
):
    """`explain_failure` parity: same category and missing identifiers per engine.

    Covers hand-made failures per category plus a sweep mutating every
    generated query's FROM table — the structured outcome feeding the repair
    loop must not depend on which engine ran the candidate.
    """
    database = _build_database(schema_builder, data_seed)
    interpreter = InterpreterBackend()
    engine = engine_factory()
    main_table = database.schema.tables[0].name
    for category, template in _BROKEN_TEMPLATES:
        query = parse_dvq(template.format(table=main_table))
        left = interpreter.explain_failure(query, database)
        right = engine.explain_failure(query, database)
        assert left.category == category, template
        assert right.category == category, template
        assert left.missing == right.missing
        assert not left.ok and not right.ok
    # sweep: break the FROM table of every generated query
    for query in _generate_corpus(database, generator_seed, count)[:30]:
        broken = query.replace(table="no_such_table_xyz")
        left = interpreter.explain_failure(broken, database)
        right = engine.explain_failure(broken, database)
        assert left.category == right.category == "missing_table", serialize_dvq(broken)
        assert left.missing == right.missing == ("no_such_table_xyz",)


def test_unsupported_category_carries_no_missing_identifiers():
    """`missing` names schema identifiers only — never functions or units."""
    from repro.executor import classify_failure
    from repro.executor.errors import ExecutionError

    outcome = classify_failure(ExecutionError("Unsupported bin unit 'WEEKZ'"))
    assert outcome.category == "unsupported"
    assert outcome.missing == ()


@pytest.mark.parametrize("engine_factory", _engine_params())
def test_backends_agree_on_cross_table_column_category(engine_factory):
    """A column that exists elsewhere in the database but not in the read tables."""
    database = _build_database(_hr_schema, 11)
    query = parse_dvq(
        "Visualize BAR SELECT DEPARTMENT_NAME , AVG(SALARY) "
        "FROM departments GROUP BY DEPARTMENT_NAME"
    )
    left = InterpreterBackend().explain_failure(query, database)
    right = engine_factory().explain_failure(query, database)
    assert left.category == right.category == "missing_column"
    assert left.missing == right.missing == ("SALARY",)


@pytest.mark.parametrize("engine_factory", _engine_params())
@pytest.mark.parametrize("schema_builder,data_seed,generator_seed,count", _CASES)
def test_explain_failure_is_ok_for_the_whole_portable_corpus(
    schema_builder, data_seed, generator_seed, count, engine_factory
):
    database = _build_database(schema_builder, data_seed)
    interpreter = InterpreterBackend()
    engine = engine_factory()
    for query in _generate_corpus(database, generator_seed, count)[:20]:
        assert interpreter.explain_failure(query, database).ok
        assert engine.explain_failure(query, database).ok


def test_databases_contain_nulls():
    """The null injection actually produced NULLs for the suite to chew on."""
    database = _build_database(_hr_schema, 11)
    nulls = sum(
        1
        for table in database.tables()
        for row in table.rows
        for value in row.values()
        if value is None
    )
    assert nulls > 20
