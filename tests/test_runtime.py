"""Tests for the batched, cached execution runtime (repro.runtime)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import GRED, GREDConfig
from repro.embeddings.embedder import EmbedderConfig, TextEmbedder
from repro.embeddings.store import VectorStore
from repro.evaluation import ModelEvaluator
from repro.llm.interface import ChatMessage, ChatModel, CompletionParams
from repro.llm.simulated import SimulatedChatModel
from repro.runtime import (
    BatchFailure,
    BatchRunner,
    LLMCache,
    LatencyChatModel,
    aggregate_stage_timings,
    format_stage_table,
)


class CountingChatModel(ChatModel):
    """Echoes the last user message; counts how often it is actually called."""

    def __init__(self):
        self.calls = 0
        self.marker = "counted"

    def complete(self, messages, params=None):
        self.calls += 1
        return f"echo:{messages[-1].content}"


class TestLLMCache:
    def test_miss_then_hit(self):
        inner = CountingChatModel()
        cache = LLMCache(inner)
        first = cache.complete_text("sys", "hello")
        second = cache.complete_text("sys", "hello")
        assert first == second == "echo:hello"
        assert inner.calls == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5
        assert len(cache) == 1

    def test_different_params_are_different_keys(self):
        inner = CountingChatModel()
        cache = LLMCache(inner)
        cache.complete_text("sys", "hello", params=CompletionParams(temperature=0.0))
        cache.complete_text("sys", "hello", params=CompletionParams(temperature=0.7))
        assert inner.calls == 2
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_different_messages_are_different_keys(self):
        inner = CountingChatModel()
        cache = LLMCache(inner)
        cache.complete([ChatMessage("user", "a")])
        cache.complete([ChatMessage("user", "b")])
        cache.complete([ChatMessage("system", "a")])
        assert inner.calls == 3

    def test_clear_drops_entries_but_keeps_stats(self):
        inner = CountingChatModel()
        cache = LLMCache(inner)
        cache.complete_text("sys", "hello")
        cache.clear()
        cache.complete_text("sys", "hello")
        assert inner.calls == 2
        assert cache.stats.misses == 2

    def test_max_entries_evicts_fifo(self):
        inner = CountingChatModel()
        cache = LLMCache(inner, max_entries=2)
        cache.complete_text("sys", "one")
        cache.complete_text("sys", "two")
        cache.complete_text("sys", "three")  # evicts "one"
        assert len(cache) == 2
        cache.complete_text("sys", "one")  # miss again
        assert inner.calls == 4
        assert cache.stats.evictions >= 1

    def test_rejects_non_positive_max_entries(self):
        with pytest.raises(ValueError):
            LLMCache(CountingChatModel(), max_entries=0)
        with pytest.raises(ValueError):
            LLMCache(CountingChatModel(), max_entries=-3)

    def test_delegates_unknown_attributes_to_inner(self):
        inner = CountingChatModel()
        cache = LLMCache(inner)
        assert cache.marker == "counted"
        simulated = LLMCache(SimulatedChatModel())
        assert len(simulated.log) == 0  # SimulatedChatModel.log reachable

    def test_behaviour_stats_group_simulated_prompts(self):
        cache = LLMCache(SimulatedChatModel())
        from repro.llm import markers

        cache.complete_text("sys", f"{markers.TASK_ANNOTATION} for this schema")
        cache.complete_text("sys", f"{markers.TASK_ANNOTATION} for this schema")
        assert cache.stats.by_behaviour["annotation"] == {"hits": 1, "misses": 1}

    def test_summary_mentions_hits_and_misses(self):
        cache = LLMCache(CountingChatModel())
        cache.complete_text("sys", "x")
        assert "misses" in cache.stats.summary()

    def test_thread_safety_under_concurrent_identical_requests(self):
        inner = CountingChatModel()
        cache = LLMCache(inner)
        errors = []

        def worker():
            try:
                for i in range(50):
                    assert cache.complete_text("sys", f"msg{i % 5}") == f"echo:msg{i % 5}"
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) == 5
        assert cache.stats.requests == 8 * 50


class TestIncrementalVectorStore:
    @pytest.fixture()
    def embedder(self):
        return TextEmbedder(EmbedderConfig(dimensions=64))

    def test_add_many_accepts_generator(self, embedder):
        store = VectorStore(embedder)
        store.add_many((f"k{i}", f"text number {i}", i) for i in range(10))
        assert len(store) == 10
        assert store.pending == 10
        assert [hit.payload for hit in store.search("text number 3", top_k=1)] == [3]
        assert store.pending == 0

    def test_incremental_add_equals_full_rebuild(self, embedder):
        corpus = [f"sentence about topic {i} with words {i * 7}" for i in range(30)]
        incremental = VectorStore(embedder)
        incremental.add_many((f"k{i}", text, i) for i, text in enumerate(corpus[:15]))
        incremental.search("topic 3", top_k=5)  # index the first half
        for i, text in enumerate(corpus[15:], start=15):
            incremental.add(f"k{i}", text, i)
        fresh = VectorStore(embedder)
        fresh.add_many((f"k{i}", text, i) for i, text in enumerate(corpus))

        for query in ("topic 3", "words 91", "sentence about"):
            left = incremental.search(query, top_k=7)
            right = fresh.search(query, top_k=7)
            assert [hit.key for hit in left] == [hit.key for hit in right]
            assert np.allclose([hit.score for hit in left], [hit.score for hit in right])

    def test_incremental_matrix_grows_not_rebuilds(self, embedder):
        store = VectorStore(embedder)
        store.add("a", "alpha", 1)
        store.search("alpha", top_k=1)
        first_matrix, _, _ = store.index.snapshot()
        store.add("b", "beta", 2)
        store.search("beta", top_k=1)
        # the first row is reused, not re-embedded
        matrix, _, _ = store.index.snapshot()
        assert np.array_equal(matrix[0], first_matrix[0])
        assert matrix.shape[0] == 2

    def test_search_many_matches_individual_searches(self, embedder):
        store = VectorStore(embedder)
        store.add_many(
            (f"k{i}", f"document {i} about {'cats' if i % 2 else 'dogs'}", i)
            for i in range(20)
        )
        queries = ["document about cats", "document about dogs", "document 7"]
        batched = store.search_many(queries, top_k=4)
        serial = [store.search(query, top_k=4) for query in queries]
        assert len(batched) == len(serial) == 3
        for batched_hits, serial_hits in zip(batched, serial):
            assert [hit.key for hit in batched_hits] == [hit.key for hit in serial_hits]
            assert np.allclose(
                [hit.score for hit in batched_hits], [hit.score for hit in serial_hits]
            )

    def test_search_many_on_empty_inputs(self, embedder):
        store = VectorStore(embedder)
        assert store.search_many([], top_k=3) == []
        assert store.search_many(["query"], top_k=3) == [[]]
        store.add("a", "alpha", 1)
        assert store.search_many(["alpha"], top_k=0) == [[]]


class TestBatchRunner:
    def test_preserves_input_order_with_many_workers(self):
        runner = BatchRunner(max_workers=8)
        report = runner.run(list(range(40)), lambda n: n * n)
        assert report.values() == [n * n for n in range(40)]
        assert [item.index for item in report.items] == list(range(40))
        assert report.max_workers == 8

    def test_serial_and_parallel_agree(self):
        items = list(range(25))
        serial = BatchRunner(max_workers=1).run(items, lambda n: n + 1)
        parallel = BatchRunner(max_workers=4).run(items, lambda n: n + 1)
        assert serial.values() == parallel.values()

    def test_failure_isolation(self):
        def flaky(n):
            if n % 5 == 0:
                raise ValueError(f"bad item {n}")
            return n

        report = BatchRunner(max_workers=4).run(list(range(10)), flaky)
        assert report.failure_count == 2
        assert report.ok_count == 8
        assert [item.index for item in report.failures()] == [0, 5]
        assert "bad item 5" in report.failures()[1].error
        values = report.values(strict=False)
        assert values[0] is None and values[5] is None and values[3] == 3

    def test_strict_values_raise_on_failure(self):
        report = BatchRunner().run([1], lambda n: 1 / 0)
        with pytest.raises(BatchFailure, match="ZeroDivisionError"):
            report.values()

    def test_fail_fast_reraises(self):
        runner = BatchRunner(max_workers=2, fail_fast=True)
        with pytest.raises(BatchFailure):
            runner.run(list(range(4)), lambda n: 1 / (n - 2))

    def test_progress_callback_sees_every_item(self):
        seen = []
        runner = BatchRunner(max_workers=4, progress=lambda done, total: seen.append((done, total)))
        runner.run(list(range(12)), lambda n: n)
        assert seen[-1] == (12, 12)
        assert [done for done, _ in seen] == list(range(1, 13))

    def test_map_returns_plain_values(self):
        assert BatchRunner(max_workers=2).map([1, 2, 3], str) == ["1", "2", "3"]

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            BatchRunner(max_workers=0)

    def test_report_summary_and_throughput(self):
        report = BatchRunner().run([1, 2], lambda n: n)
        assert "2/2 ok" in report.summary()
        assert report.items_per_second > 0
        assert report.busy_seconds >= 0


class TestStageTimings:
    def test_aggregation(self):
        stats = aggregate_stage_timings(
            [{"generate": 0.5, "retune": 0.1}, {"generate": 1.5}, {"debug": 0.2}]
        )
        assert stats["generate"].count == 2
        assert stats["generate"].total_seconds == pytest.approx(2.0)
        assert stats["generate"].mean_seconds == pytest.approx(1.0)
        assert stats["generate"].max_seconds == pytest.approx(1.5)
        assert stats["debug"].count == 1
        table = format_stage_table(stats)
        assert "generate" in table and "mean ms" in table


class TestLatencyChatModel:
    def test_delegates_and_counts(self):
        inner = CountingChatModel()
        delayed = LatencyChatModel(inner, seconds_per_call=0.0)
        assert delayed.complete_text("sys", "ping") == "echo:ping"
        assert delayed.calls == 1 and inner.calls == 1
        assert delayed.marker == "counted"

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LatencyChatModel(CountingChatModel(), seconds_per_call=-1.0)


class TestBatchedPipeline:
    @pytest.fixture(scope="class")
    def prepared(self, small_dataset):
        model = GRED(GREDConfig(top_k=5)).fit(small_dataset.train, small_dataset.catalog)
        return model, small_dataset

    def test_batched_predict_matches_serial(self, prepared):
        """Regression: runner-driven predict_batch is bit-identical to serial traces."""
        model, dataset = prepared
        examples = dataset.test[:12]
        serial = [model.trace(example.nlq, dataset.catalog.get(example.db_id)) for example in examples]
        batched = model.predict_batch(examples, dataset.catalog, runner=BatchRunner(max_workers=4))
        assert batched == serial  # GREDTrace equality ignores timings

    def test_trace_records_stage_timings(self, prepared):
        model, dataset = prepared
        example = dataset.test[0]
        trace = model.trace(example.nlq, dataset.catalog.get(example.db_id))
        assert set(trace.timings) <= {"generate", "retune", "debug"}
        assert "generate" in trace.timings
        assert all(seconds >= 0 for seconds in trace.timings.values())

    def test_trace_batch_report_carries_failures(self, prepared):
        model, dataset = prepared
        import dataclasses

        examples = list(dataset.test[:4])
        examples[2] = dataclasses.replace(examples[2], db_id="no_such_database")
        report = model.trace_batch(examples, dataset.catalog)
        assert report.failure_count == 1
        assert report.failures()[0].index == 2
        assert "no_such_database" in report.failures()[0].error
        with pytest.raises(BatchFailure):
            model.predict_batch(examples, dataset.catalog)

    def test_cached_gred_produces_identical_traces(self, small_dataset):
        plain = GRED(GREDConfig(top_k=5)).fit(small_dataset.train, small_dataset.catalog)
        cached = GRED(GREDConfig(top_k=5, use_llm_cache=True)).fit(
            small_dataset.train, small_dataset.catalog
        )
        assert cached.llm_cache is not None and plain.llm_cache is None
        examples = small_dataset.test[:8]
        for example in examples:
            database = small_dataset.catalog.get(example.db_id)
            assert cached.trace(example.nlq, database) == plain.trace(example.nlq, database)
        # a second pass over the same examples is answered from the cache
        before = cached.llm_cache.stats.hits
        for example in examples:
            cached.predict(example.nlq, small_dataset.catalog.get(example.db_id))
        assert cached.llm_cache.stats.hits > before


class TestEvaluatorRuntime:
    class _FlakyModel:
        """Predicts the gold DVQ, except for one example where it raises."""

        def __init__(self, dataset, bad_nlq):
            self._targets = {example.nlq: example.dvq for example in dataset.examples}
            self._bad_nlq = bad_nlq

        def predict(self, nlq, database):
            if nlq == self._bad_nlq:
                raise RuntimeError("prediction backend crashed")
            return self._targets[nlq]

    def test_parallel_evaluation_matches_serial(self, small_dataset):
        from repro.models import Seq2VisModel

        model = Seq2VisModel()
        model.fit(small_dataset.train, small_dataset.catalog)
        dataset = small_dataset.with_examples(small_dataset.test)
        serial = ModelEvaluator(limit=30).evaluate(model, dataset)
        parallel = ModelEvaluator(limit=30, max_workers=4).evaluate(model, dataset)
        assert [record.predicted for record in serial.records] == [
            record.predicted for record in parallel.records
        ]
        assert serial.result.as_dict() == parallel.result.as_dict()

    def test_failed_prediction_is_isolated_and_scored_wrong(self, small_dataset):
        dataset = small_dataset.with_examples(small_dataset.test[:10])
        bad_nlq = dataset.examples[4].nlq
        evaluator = ModelEvaluator(max_workers=2)
        with pytest.warns(UserWarning, match="scored as wrong"):
            run = evaluator.evaluate(self._FlakyModel(dataset, bad_nlq), dataset)
        assert len(run.records) == 10
        assert evaluator.last_report is not None
        assert evaluator.last_report.failure_count >= 1
        assert run.failure_count == evaluator.last_report.failure_count
        failed = [record for record in run.records if record.nlq == bad_nlq]
        assert failed and failed[0].predicted == ""
        assert not failed[0].overall_correct

    def test_clean_run_has_no_failures_and_no_warning(self, small_dataset):
        import warnings as warnings_module

        from repro.models import Seq2VisModel

        model = Seq2VisModel()
        model.fit(small_dataset.train, small_dataset.catalog)
        dataset = small_dataset.with_examples(small_dataset.test)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            run = ModelEvaluator(limit=10).evaluate(model, dataset)
        assert run.failure_count == 0
