"""Tests for the pluggable vector-index subsystem (`repro.index`).

Covers the backend contract (exact == brute force, partitioned == exact at
full probe, determinism across worker counts), the deterministic top-K
tie-break, concurrent add/search consistency through a shared store, and
snapshot persistence round-trips at both the store and the retriever level.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.retriever import GREDRetriever
from repro.embeddings import EmbedderConfig, TextEmbedder, VectorStore
from repro.index import (
    ExactIndex,
    IndexConfig,
    PartitionedIndex,
    SnapshotError,
    build_index,
    load_index,
    save_index,
    select_top_k,
)
from repro.nvbench.generator import build_corpus
from repro.runtime import BatchRunner


def unit_rows(rng, count, dims):
    rows = rng.normal(size=(count, dims))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def clustered_rows(rng, count, dims, clusters, noise=0.3):
    centers = unit_rows(rng, clusters, dims)
    assignment = rng.integers(0, clusters, size=count)
    rows = centers[assignment] + noise * rng.normal(size=(count, dims))
    return rows / np.linalg.norm(rows, axis=1, keepdims=True), centers


class TestSelectTopK:
    def test_matches_full_sort(self):
        rng = np.random.default_rng(3)
        scores = rng.normal(size=200)
        keys = [f"k{i:03d}" for i in range(200)]
        expected = sorted(range(200), key=lambda i: (-scores[i], keys[i]))[:10]
        assert select_top_k(scores, keys, 10) == expected

    def test_ties_break_by_key_ascending(self):
        scores = np.array([0.5, 0.9, 0.9, 0.1, 0.9])
        keys = ["e", "d", "b", "a", "c"]
        picks = select_top_k(scores, keys, 3)
        # three-way tie at 0.9 resolved alphabetically: b, c, d
        assert [keys[i] for i in picks] == ["b", "c", "d"]

    def test_tie_at_the_partition_boundary_is_deterministic(self):
        scores = np.array([1.0, 0.5, 0.5, 0.5, 0.2])
        keys = ["a", "z", "m", "b", "q"]
        picks = select_top_k(scores, keys, 2)
        assert [keys[i] for i in picks] == ["a", "b"]

    def test_k_larger_than_library(self):
        scores = np.array([0.2, 0.8])
        assert select_top_k(scores, ["a", "b"], 10) == [1, 0]

    def test_empty_and_zero_k(self):
        assert select_top_k(np.array([]), [], 5) == []
        assert select_top_k(np.array([1.0]), ["a"], 0) == []

    def test_mass_tie_returns_smallest_keys(self):
        # e.g. a zero query vector scores the whole library identically; the
        # winners must still be deterministic (smallest keys) and cheap to pick
        scores = np.zeros(5000)
        keys = [f"k{(i * 379) % 5000:04d}" for i in range(5000)]  # shuffled
        picks = select_top_k(scores, keys, 3)
        assert [keys[i] for i in picks] == ["k0000", "k0001", "k0002"]


class TestExactIndex:
    def test_matches_brute_force_reference(self):
        rng = np.random.default_rng(11)
        rows = unit_rows(rng, 300, 32)
        keys = [f"k{i:04d}" for i in range(300)]
        index = ExactIndex()
        index.add(keys, rows, list(range(300)))
        queries = unit_rows(rng, 7, 32)
        results = index.search_matrix(queries, 5)
        for query, hits in zip(queries, results):
            scores = rows @ query
            expected = sorted(range(300), key=lambda i: (-scores[i], keys[i]))[:5]
            assert [hit.key for hit in hits] == [keys[i] for i in expected]
            assert [hit.payload for hit in hits] == expected
            assert all(np.isclose(hit.score, scores[i]) for hit, i in zip(hits, expected))

    def test_add_rejects_mismatched_batches(self):
        index = ExactIndex()
        with pytest.raises(ValueError, match="Mismatched batch"):
            index.add(["a"], np.zeros((2, 4)), [1, 2])

    def test_incremental_adds_extend_the_library(self):
        rng = np.random.default_rng(5)
        rows = unit_rows(rng, 20, 16)
        index = ExactIndex()
        index.add([f"a{i}" for i in range(10)], rows[:10], list(range(10)))
        index.search_matrix(rows[:1], 3)
        index.add([f"b{i}" for i in range(10)], rows[10:], list(range(10, 20)))
        assert len(index) == 20
        hits = index.search_matrix(rows[15:16], 1)[0]
        assert hits[0].key == "b5" and hits[0].payload == 15


class TestPartitionedIndex:
    def _filled(self, rng, count=600, dims=24, **kwargs):
        rows, _ = clustered_rows(rng, count, dims, clusters=12)
        keys = [f"k{i:05d}" for i in range(count)]
        index = PartitionedIndex(**kwargs)
        index.add(keys, rows, list(range(count)))
        return index, rows, keys

    def test_full_probe_equals_exact(self):
        rng = np.random.default_rng(23)
        index, rows, keys = self._filled(rng, num_partitions=8, nprobe=8)
        exact = ExactIndex()
        exact.add(keys, rows, list(range(len(rows))))
        queries = unit_rows(rng, 9, rows.shape[1])
        expected = exact.search_matrix(queries, 7)
        actual = index.search_matrix(queries, 7)
        assert index.is_trained
        for left, right in zip(expected, actual):
            assert [(h.key, h.payload) for h in left] == [(h.key, h.payload) for h in right]
            assert np.allclose([h.score for h in left], [h.score for h in right])

    def test_identical_results_across_worker_counts(self):
        queries = None
        results = []
        for workers in (1, 4):
            rng = np.random.default_rng(31)
            index, rows, _ = self._filled(
                rng, num_partitions=10, nprobe=3, search_workers=workers
            )
            queries = unit_rows(np.random.default_rng(99), 11, rows.shape[1])
            results.append(index.search_matrix(queries, 6))
        serial, threaded = results
        assert [[(h.key, h.score) for h in hits] for hits in serial] == [
            [(h.key, h.score) for h in hits] for hits in threaded
        ]

    def test_small_library_falls_back_to_exact_scan(self):
        rng = np.random.default_rng(7)
        rows = unit_rows(rng, 6, 16)
        index = PartitionedIndex(num_partitions=8, nprobe=2)
        index.add([f"k{i}" for i in range(6)], rows, list(range(6)))
        hits = index.search_matrix(rows[:1], 6)[0]
        assert not index.is_trained
        assert len(hits) == 6  # every entry reachable despite nprobe=2

    def test_recall_on_clustered_data(self):
        rng = np.random.default_rng(41)
        rows, centers = clustered_rows(rng, 2000, 32, clusters=40, noise=0.25)
        keys = [f"k{i:05d}" for i in range(2000)]
        exact = ExactIndex()
        exact.add(keys, rows, list(range(2000)))
        index = PartitionedIndex(num_partitions=40, nprobe=8)
        index.add(keys, rows, list(range(2000)))
        queries = centers[:25] + 0.25 * rng.normal(size=(25, 32))
        queries /= np.linalg.norm(queries, axis=1, keepdims=True)
        truth = exact.search_matrix(queries, 5)
        approx = index.search_matrix(queries, 5)
        recalls = [
            len({h.key for h in t} & {h.key for h in a}) / 5 for t, a in zip(truth, approx)
        ]
        assert sum(recalls) / len(recalls) >= 0.9

    def test_tail_entries_are_found_before_retraining(self):
        rng = np.random.default_rng(53)
        index, rows, _ = self._filled(rng, count=500, num_partitions=10, nprobe=2)
        index.search_matrix(rows[:1], 1)  # train on the initial 500
        trained_before = index._trained_rows
        tail = unit_rows(rng, 3, rows.shape[1])
        index.add(["tail0", "tail1", "tail2"], tail, ["t0", "t1", "t2"])
        hits = index.search_matrix(tail[1:2], 1)[0]
        assert hits[0].key == "tail1" and hits[0].payload == "t1"
        assert index._trained_rows == trained_before  # small tail: no retrain

    def test_retrains_after_substantial_growth(self):
        rng = np.random.default_rng(59)
        index, rows, _ = self._filled(rng, count=300, num_partitions=6, nprobe=2)
        index.search_matrix(rows[:1], 1)
        first_training = index._trained_rows
        more = unit_rows(rng, 400, rows.shape[1])
        index.add([f"m{i}" for i in range(400)], more, list(range(400)))
        index.search_matrix(rows[:1], 1)
        assert index._trained_rows > first_training

    def test_rejects_invalid_nprobe(self):
        with pytest.raises(ValueError, match="nprobe"):
            PartitionedIndex(nprobe=0)

    def test_empty_partitions_never_probed(self):
        # two tight clusters but eight requested partitions: k-means leaves
        # empties, which must not eat nprobe slots (nprobe=1 still finds hits)
        rng = np.random.default_rng(83)
        rows, _ = clustered_rows(rng, 40, 16, clusters=2, noise=0.01)
        index = PartitionedIndex(num_partitions=8, nprobe=1)
        index.add([f"k{i:02d}" for i in range(40)], rows, list(range(40)))
        hits = index.search_matrix(rows[:3], 5)
        assert index.is_trained
        # probing one partition may return fewer than top_k (IVF semantics),
        # but never zero: empty partitions are dropped at train time
        assert all(len(query_hits) >= 1 for query_hits in hits)
        assert all(size > 0 for size in index.partition_sizes())


class TestBuildIndex:
    def test_builds_both_backends(self):
        assert isinstance(build_index(IndexConfig()), ExactIndex)
        partitioned = build_index(IndexConfig(backend="partitioned", num_partitions=4, nprobe=2))
        assert isinstance(partitioned, PartitionedIndex)
        assert partitioned.num_partitions == 4 and partitioned.nprobe == 2

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="Unknown index backend"):
            build_index(IndexConfig(backend="faiss"))


class TestConcurrentRetrieval:
    """Satellite: interleaved add/search on one shared store stays consistent."""

    def test_interleaved_add_and_search_yield_consistent_triples(self):
        embedder = TextEmbedder(EmbedderConfig(dimensions=48))
        store: VectorStore = VectorStore(embedder)
        store.add_many(
            (f"seed{i:03d}", f"seed document {i} about topic {i % 7}", {"key": f"seed{i:03d}"})
            for i in range(40)
        )
        queries = [f"document about topic {i % 7}" for i in range(30)]
        stop_adding = threading.Event()

        def writer():
            batch = 0
            while not stop_adding.is_set() and batch < 40:
                store.add_many(
                    (
                        f"w{batch:02d}_{i}",
                        f"added document {batch} {i} topic {i % 5}",
                        {"key": f"w{batch:02d}_{i}"},
                    )
                    for i in range(5)
                )
                batch += 1

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        try:
            runner = BatchRunner(max_workers=6)
            batched = runner.map(queries, lambda query: (query, store.search(query, top_k=8)))
            many = store.search_many(queries[:8], top_k=8)
        finally:
            stop_adding.set()
            writer_thread.join()

        results = list(batched) + list(zip(queries[:8], many))
        checked = 0
        for query, hits in results:
            assert hits, f"no hits for {query!r}"
            query_vector = embedder.embed(query)
            scores = [hit.score for hit in hits]
            assert scores == sorted(scores, reverse=True)
            for hit in hits:
                # the triple is internally consistent: payload belongs to the
                # key, and the score is the similarity of that key's own text
                assert hit.payload["key"] == hit.key
                checked += 1
                if hit.key.startswith("seed"):
                    seed_index = int(hit.key[4:])
                    text = f"seed document {seed_index} about topic {seed_index % 7}"
                else:
                    batch, item = hit.key[1:].split("_")
                    text = f"added document {int(batch)} {item} topic {int(item) % 5}"
                assert np.isclose(hit.score, float(embedder.embed(text) @ query_vector))
        assert checked >= len(results) * 8


class TestSnapshotPersistence:
    def test_store_round_trip_is_bit_identical(self, tmp_path):
        embedder = TextEmbedder(EmbedderConfig(dimensions=64))
        store: VectorStore = VectorStore(embedder)
        store.add_many((f"k{i}", f"entry {i} about {i % 9}", {"n": i}) for i in range(60))
        expected = store.search_many(["entry about 4", "entry about 7"], top_k=6)

        path = store.save(str(tmp_path / "lib"))
        fresh_embedder = TextEmbedder(EmbedderConfig(dimensions=64))
        loaded: VectorStore = VectorStore.load(path, fresh_embedder)
        actual = loaded.search_many(["entry about 4", "entry about 7"], top_k=6)

        assert [[(h.key, h.payload, h.score) for h in hits] for hits in actual] == [
            [(h.key, h.payload, h.score) for h in hits] for hits in expected
        ]
        assert loaded.texts() == store.texts()
        # only the two queries were embedded; the library came from disk
        assert fresh_embedder.texts_embedded == 2

    def test_partitioned_store_round_trip_keeps_training(self, tmp_path):
        rng = np.random.default_rng(67)
        rows, _ = clustered_rows(rng, 400, 32, clusters=8)
        index = PartitionedIndex(num_partitions=8, nprobe=3)
        index.add([f"k{i:04d}" for i in range(400)], rows, list(range(400)))
        index.search_matrix(rows[:1], 1)  # train
        expected = index.search_matrix(rows[:5], 4)

        path = save_index(index, str(tmp_path / "part"))
        loaded, _, _ = load_index(path)
        assert isinstance(loaded, PartitionedIndex) and loaded.is_trained
        actual = loaded.search_matrix(rows[:5], 4)
        assert [[(h.key, h.score) for h in hits] for hits in actual] == [
            [(h.key, h.score) for h in hits] for hits in expected
        ]

    def test_retriever_round_trip_with_fresh_embedder(self, tmp_path):
        """Satellite: save a prepared retriever, reload into a fresh object,
        and get bit-identical top-K on a seeded query set without re-embedding."""
        dataset = build_corpus(scale=0.05, seed=17)
        retriever = GREDRetriever().prepare(dataset.train)
        queries = [example.nlq for example in dataset.test[:12]]
        dvq_queries = [example.dvq for example in dataset.test[:12]]
        expected_nlq = retriever.retrieve_by_nlq_many(queries, top_k=10)
        expected_dvq = retriever.retrieve_by_dvq_many(dvq_queries, top_k=10)

        directory = retriever.save(str(tmp_path / "retriever"))
        restored = GREDRetriever(embedder=TextEmbedder(EmbedderConfig(dimensions=16)))
        restored.load(directory)
        assert restored.embedder.texts_embedded == 0  # nothing re-embedded on load

        actual_nlq = restored.retrieve_by_nlq_many(queries, top_k=10)
        actual_dvq = restored.retrieve_by_dvq_many(dvq_queries, top_k=10)
        for expected, actual in ((expected_nlq, actual_nlq), (expected_dvq, actual_dvq)):
            assert [[(h.key, h.score) for h in hits] for hits in actual] == [
                [(h.key, h.score) for h in hits] for hits in expected
            ]
        # payloads survive the JSON codec as real examples
        assert actual_nlq[0][0].payload == expected_nlq[0][0].payload

    def test_partitioned_snapshot_is_saved_trained(self, tmp_path):
        # prepare() saves before any search runs; the snapshot must still
        # carry the k-means structures so warm starts skip training too
        dataset = build_corpus(scale=0.05, seed=17)
        config = IndexConfig(
            backend="partitioned", num_partitions=8, nprobe=3,
            snapshot_path=str(tmp_path / "plib"),
        )
        GREDRetriever(index_config=config).prepare(dataset.train)
        restored = GREDRetriever(index_config=config)
        restored.prepare(dataset.train)
        assert restored.embedder.texts_embedded == 0
        assert isinstance(restored.nlq_store.index, PartitionedIndex)
        assert restored.nlq_store.index.is_trained  # no first-query k-means

    def test_retuning_nprobe_keeps_the_snapshot(self, tmp_path):
        dataset = build_corpus(scale=0.05, seed=17)
        path = str(tmp_path / "plib")
        GREDRetriever(
            index_config=IndexConfig(backend="partitioned", nprobe=4, snapshot_path=path)
        ).prepare(dataset.train)
        retuned = GREDRetriever(
            index_config=IndexConfig(backend="partitioned", nprobe=8, snapshot_path=path)
        )
        retuned.prepare(dataset.train)
        assert retuned.embedder.texts_embedded == 0  # search knob: no rebuild
        assert retuned.nlq_store.index.nprobe == 8  # current setting wins

    def test_embed_counter_is_exact_under_concurrency(self):
        embedder = TextEmbedder(EmbedderConfig(dimensions=16))
        BatchRunner(max_workers=8).map(
            [f"text {i}" for i in range(200)], embedder.embed
        )
        assert embedder.texts_embedded == 200

    def test_prepare_uses_snapshot_and_skips_embedding(self, tmp_path):
        dataset = build_corpus(scale=0.05, seed=17)
        config = IndexConfig(snapshot_path=str(tmp_path / "lib"))
        GREDRetriever(index_config=config).prepare(dataset.train)

        fresh = GREDRetriever(index_config=config)
        fresh.prepare(dataset.train)
        assert fresh.embedder.texts_embedded == 0
        assert fresh.retrieve_by_nlq(dataset.test[0].nlq, top_k=5)

    def test_prepare_rebuilds_on_stale_snapshot(self, tmp_path):
        dataset = build_corpus(scale=0.05, seed=17)
        config = IndexConfig(snapshot_path=str(tmp_path / "lib"))
        GREDRetriever(index_config=config).prepare(dataset.train[:30])

        fresh = GREDRetriever(index_config=config)
        fresh.prepare(dataset.train[:40])  # different corpus -> digest mismatch
        assert fresh.embedder.texts_embedded >= 80  # re-embedded both libraries

    def test_load_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="No retriever snapshot"):
            GREDRetriever().load(str(tmp_path / "nowhere"))
        with pytest.raises(SnapshotError, match="No index snapshot"):
            load_index(str(tmp_path / "nothing.npz"))

    def test_prepare_recovers_from_malformed_meta(self, tmp_path):
        dataset = build_corpus(scale=0.05, seed=17)
        config = IndexConfig(snapshot_path=str(tmp_path / "lib"))
        retriever = GREDRetriever(index_config=config)
        retriever.prepare(dataset.train[:30])
        digest = retriever._corpus_digest(list(dataset.train[:30]))
        # valid JSON, matching digest, but a broken embedder block
        (tmp_path / "lib" / "meta.json").write_text(
            f'{{"digest": "{digest}", "embedder": null}}'
        )
        fresh = GREDRetriever(index_config=config)
        fresh.prepare(dataset.train[:30])  # must rebuild, not crash
        assert fresh.retrieve_by_nlq(dataset.test[0].nlq, top_k=3)

    def test_corrupt_snapshot_raises_snapshot_error(self, tmp_path):
        target = tmp_path / "broken.npz"
        target.write_bytes(b"not an npz archive")
        with pytest.raises(SnapshotError, match="Corrupt index snapshot"):
            load_index(str(target))

    def test_prepare_recovers_from_truncated_snapshot(self, tmp_path):
        dataset = build_corpus(scale=0.05, seed=17)
        config = IndexConfig(snapshot_path=str(tmp_path / "lib"))
        GREDRetriever(index_config=config).prepare(dataset.train[:30])
        # simulate a crash mid-write: the archive exists but is garbage
        (tmp_path / "lib" / "nlq.npz").write_bytes(b"partial write")
        fresh = GREDRetriever(index_config=config)
        fresh.prepare(dataset.train[:30])  # must rebuild, not crash
        assert fresh.retrieve_by_nlq(dataset.test[0].nlq, top_k=3)

    def test_partitioned_round_trip_keeps_tuning_knobs(self, tmp_path):
        index = PartitionedIndex(
            num_partitions=6, nprobe=2, seed=99, kmeans_iterations=5, retrain_growth=0.1
        )
        rng = np.random.default_rng(71)
        rows = unit_rows(rng, 40, 16)
        index.add([f"k{i}" for i in range(40)], rows, list(range(40)))
        loaded, _, _ = load_index(save_index(index, str(tmp_path / "tuned")))
        assert isinstance(loaded, PartitionedIndex)
        assert loaded.seed == 99
        assert loaded.kmeans_iterations == 5
        assert loaded.retrain_growth == 0.1

    def test_payload_field_change_invalidates_snapshot(self, tmp_path):
        dataset = build_corpus(scale=0.05, seed=17)
        config = IndexConfig(snapshot_path=str(tmp_path / "lib"))
        GREDRetriever(index_config=config).prepare(dataset.train[:30])
        # same ids/nlqs/dvqs, different payload field (the nvBench-Rob path)
        renamed = [example.with_variant(db_id=f"{example.db_id}_rob")
                   for example in dataset.train[:30]]
        fresh = GREDRetriever(index_config=config)
        fresh.prepare(renamed)
        assert fresh.embedder.texts_embedded >= 60  # digest mismatch -> rebuilt
        hit = fresh.retrieve_by_nlq(renamed[0].nlq, top_k=1)[0]
        assert hit.payload.db_id.endswith("_rob")
