"""Tests for the synthetic nvBench corpus generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dvq import parse_dvq
from repro.dvq.nodes import ChartType
from repro.nvbench import NVBenchDataset, NVBenchExample, Split, compute_hardness, compute_statistics
from repro.nvbench.domains import DOMAIN_TEMPLATES, build_catalog_schemas
from repro.nvbench.generator import CorpusConfig, NVBenchGenerator
from repro.nvbench.nlq import NLQTemplater
from repro.nvbench.sampler import DVQSampler
from repro.nvbench.hardness import Hardness
from repro.nvbench.stats import PAPER_CHART_TYPE_COUNTS
import random


class TestDomains:
    def test_templates_have_foreign_keys(self):
        assert all(template.foreign_keys for template in DOMAIN_TEMPLATES)

    def test_build_catalog_schemas_count(self):
        schemas = build_catalog_schemas(104)
        assert len(schemas) == 104
        assert len({schema.name for schema in schemas}) == 104

    def test_average_tables_per_database_is_plausible(self):
        schemas = build_catalog_schemas(52)
        average = sum(len(schema.tables) for schema in schemas) / len(schemas)
        assert 3.0 <= average <= 6.5


class TestSamplerAndTemplater:
    @pytest.mark.parametrize("chart_name", list(PAPER_CHART_TYPE_COUNTS))
    def test_sampler_supports_every_chart_type(self, chart_name, small_dataset):
        rng = random.Random(1)
        sampled = False
        for database in small_dataset.catalog:
            sampler = DVQSampler(database.schema, rng)
            try:
                query = sampler.sample(ChartType.from_text(chart_name), Hardness.MEDIUM)
            except Exception:
                continue
            assert query.chart_type.value == chart_name or query.chart_type.is_grouped is False
            sampled = True
            break
        assert sampled

    def test_nlq_mentions_column_names_explicitly(self, small_dataset):
        """The defining nvBench property: questions echo schema identifiers."""
        mention_count = 0
        for example in small_dataset.examples[:100]:
            query = parse_dvq(example.dvq)
            x_column = query.x.column.column
            if x_column.lower() in example.nlq.lower():
                mention_count += 1
        assert mention_count / 100 > 0.9

    def test_templater_is_deterministic_per_rng_seed(self, small_dataset):
        query = parse_dvq(small_dataset.examples[0].dvq)
        first = NLQTemplater(random.Random(5)).render(query)
        second = NLQTemplater(random.Random(5)).render(query)
        assert first == second


class TestGenerator:
    def test_generation_is_deterministic(self):
        config = CorpusConfig(scale=0.02, seed=21)
        first = NVBenchGenerator(config).generate()
        second = NVBenchGenerator(config).generate()
        assert [e.dvq for e in first.examples] == [e.dvq for e in second.examples]

    def test_split_ratios(self, small_dataset):
        total = len(small_dataset)
        assert len(small_dataset.train) / total == pytest.approx(0.80, abs=0.03)
        assert len(small_dataset.test) / total == pytest.approx(0.155, abs=0.03)

    def test_all_examples_reference_catalog_databases(self, small_dataset):
        for example in small_dataset.examples:
            assert example.db_id in small_dataset.catalog

    def test_all_gold_dvqs_parse(self, small_dataset):
        for example in small_dataset.examples:
            parse_dvq(example.dvq)

    def test_chart_distribution_is_bar_dominated(self, small_dataset):
        stats = compute_statistics(small_dataset.examples, small_dataset.catalog)
        bar_share = stats.chart_type_counts.get("BAR", 0) / stats.total_examples
        assert bar_share > 0.5

    def test_hardness_levels_all_present(self, small_dataset):
        stats = compute_statistics(small_dataset.examples, small_dataset.catalog)
        assert set(stats.hardness_counts) >= {"Easy", "Medium", "Hard"}

    def test_statistics_rows_flatten(self, small_dataset):
        stats = compute_statistics(small_dataset.examples, small_dataset.catalog)
        rows = stats.as_rows()
        assert ("total", "examples", stats.total_examples) in rows

    def test_hardness_matches_recomputation(self, small_dataset):
        for example in small_dataset.examples[:50]:
            assert compute_hardness(parse_dvq(example.dvq)).value == example.hardness


class TestDataset:
    def test_save_and_load_round_trip(self, small_dataset, tmp_path):
        path = tmp_path / "examples.json"
        small_dataset.save_examples(path)
        loaded = NVBenchDataset.load_examples(path, catalog=small_dataset.catalog)
        assert len(loaded) == len(small_dataset)
        assert loaded.examples[0] == small_dataset.examples[0]

    def test_filter_returns_view(self, small_dataset):
        bars = small_dataset.filter(lambda example: example.chart_type == "BAR")
        assert all(example.chart_type == "BAR" for example in bars.examples)

    def test_example_variant_copy(self):
        example = NVBenchExample(
            example_id="e1", db_id="db", nlq="q", dvq="Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a",
            chart_type="BAR", hardness="Easy",
        )
        variant = example.with_variant(nlq="new question", meta_update={"variant": "nlq"})
        assert variant.nlq == "new question"
        assert variant.dvq == example.dvq
        assert example.nlq == "q"

    def test_split_round_trip_via_dict(self):
        example = NVBenchExample(
            example_id="e1", db_id="db", nlq="q", dvq="d", chart_type="BAR",
            hardness="Easy", split=Split.DEV,
        )
        assert NVBenchExample.from_dict(example.to_dict()) == example

    @settings(max_examples=30, deadline=None)
    @given(st.text(min_size=1, max_size=40), st.text(min_size=1, max_size=40))
    def test_example_serialization_survives_arbitrary_text(self, nlq, dvq):
        example = NVBenchExample(
            example_id="x", db_id="db", nlq=nlq, dvq=dvq, chart_type="BAR", hardness="Easy"
        )
        assert NVBenchExample.from_dict(example.to_dict()) == example
