"""The stage-plan pipeline: plan/legacy equivalence, middleware, repair loop.

The centrepiece is the seeded regression suite asserting that the default
:class:`~repro.pipeline.plan.StagePlan` reproduces the pre-refactor
``GRED.trace`` outputs *bit-identically* across a 50-example corpus slice for
all four retuner/debugger ablation combinations — the legacy three-call loop
is reimplemented inline here as the oracle.
"""

from __future__ import annotations

import pytest

from repro.core import GRED, GREDConfig, NotFittedError, RepairStats
from repro.core.debugger import AnnotationBasedDebugger
from repro.core.pipeline import GREDTrace
from repro.database import DataGenerator
from repro.database.schema import ColumnType, build_schema
from repro.evaluation import ModelEvaluator
from repro.executor.backend import InterpreterBackend
from repro.llm.simulated import SimulatedChatModel
from repro.pipeline import (
    ExecutionGuidedRepairStage,
    RetryMiddleware,
    StageContext,
    StagePlan,
    TimingMiddleware,
    VerifyExecutionStage,
)
from repro.robustness.variants import VariantKind

#: The four retuner/debugger ablation combinations of Table 4.
ABLATIONS = [
    pytest.param(True, True, id="full"),
    pytest.param(False, False, id="wo-rtn-dbg"),
    pytest.param(False, True, id="wo-rtn"),
    pytest.param(True, False, id="wo-dbg"),
]


def legacy_trace(model: GRED, nlq: str, database):
    """The pre-refactor ``GRED.trace`` body: three hard-coded ``if`` branches.

    Kept verbatim (minus timings) as the oracle for the equivalence suite —
    if the stage plan ever diverges from this, the refactor changed
    behaviour.
    """
    dvq_gen = model.generator.generate(nlq, database)
    dvq_rtn = dvq_gen
    if model.config.use_retuner and model.retuner is not None and dvq_gen:
        dvq_rtn = model.retuner.retune(dvq_gen)
    dvq_dbg = dvq_rtn
    if model.config.use_debugger and model.debugger is not None and dvq_rtn:
        dvq_dbg = model.debugger.debug(dvq_rtn, database)
    return dvq_gen, dvq_rtn, dvq_dbg


@pytest.fixture(scope="module")
def equivalence_corpus(small_dataset, robustness_suite):
    """A 50-example slice mixing original and dual-variant questions."""
    examples = list(small_dataset.test) + list(robustness_suite.dual_variant.examples)
    assert len(examples) >= 50
    return examples[:50]


class TestPlanLegacyEquivalence:
    @pytest.mark.parametrize("use_retuner,use_debugger", ABLATIONS)
    def test_default_plan_reproduces_legacy_traces_bit_identically(
        self, small_dataset, robustness_suite, equivalence_corpus, use_retuner, use_debugger
    ):
        model = GRED(
            GREDConfig(top_k=5, use_retuner=use_retuner, use_debugger=use_debugger)
        ).fit(small_dataset.train, small_dataset.catalog)
        catalog = robustness_suite.catalog
        for example in equivalence_corpus:
            database = (
                catalog.get(example.db_id)
                if example.db_id in catalog
                else small_dataset.catalog.get(example.db_id)
            )
            trace = model.trace(example.nlq, database)
            dvq_gen, dvq_rtn, dvq_dbg = legacy_trace(model, example.nlq, database)
            assert trace.dvq_gen == dvq_gen, example.nlq
            assert trace.dvq_rtn == dvq_rtn, example.nlq
            assert trace.dvq_dbg == dvq_dbg, example.nlq
            assert trace.final == dvq_dbg, example.nlq

    def test_plan_membership_follows_ablation_switches(self, small_dataset):
        full = GRED(GREDConfig(top_k=3)).fit(small_dataset.train, small_dataset.catalog)
        assert full.plan.names() == ("generate", "retune", "debug")
        bare = GRED(GREDConfig(top_k=3, use_retuner=False, use_debugger=False)).fit(
            small_dataset.train, small_dataset.catalog
        )
        assert bare.plan.names() == ("generate",)
        repair = GRED(
            GREDConfig(top_k=3, max_repair_rounds=2, verify_execution=True)
        ).fit(small_dataset.train, small_dataset.catalog)
        assert repair.plan.names() == ("generate", "retune", "debug", "repair", "verify")


@pytest.fixture(scope="module")
def toy_database():
    schema = build_schema(
        "plan_toy",
        [
            (
                "products",
                [
                    ("PRODUCT_ID", ColumnType.NUMBER, "id"),
                    ("PRODUCT_NAME", ColumnType.TEXT, "product"),
                    ("PRICE", ColumnType.NUMBER, "price"),
                ],
            ),
            (
                "orders",
                [
                    ("ORDER_ID", ColumnType.NUMBER, "id"),
                    ("PRODUCT_ID", ColumnType.NUMBER, "id"),
                    ("ORDER_DATE", ColumnType.DATE, "date"),
                    ("QUANTITY", ColumnType.NUMBER, "count"),
                ],
            ),
        ],
        foreign_keys=[("orders", "PRODUCT_ID", "products", "PRODUCT_ID")],
    )
    return DataGenerator(seed=5, rows_per_table=25).populate(schema)


@pytest.fixture()
def repair_stage(toy_database):
    llm = SimulatedChatModel()
    from repro.core.annotator import DatabaseAnnotator

    debugger = AnnotationBasedDebugger(annotator=DatabaseAnnotator(llm), llm=llm)
    return ExecutionGuidedRepairStage(debugger, InterpreterBackend(), max_rounds=3)


class TestExecutionGuidedRepairStage:
    def test_rescues_cross_table_column(self, toy_database, repair_stage):
        context = StageContext(
            nlq="q",
            database=toy_database,
            dvq=(
                "Visualize BAR SELECT PRODUCT_NAME , AVG(ORDER_DATE) "
                "FROM products GROUP BY PRODUCT_NAME"
            ),
        )
        repair_stage.run(context)
        assert context.executes is True
        assert context.repair_rounds >= 1
        assert any(record.stage == "repair" and record.changed for record in context.records)
        assert "ORDER_DATE" not in context.dvq

    def test_executing_candidate_is_left_alone(self, toy_database, repair_stage):
        dvq = "Visualize BAR SELECT PRODUCT_NAME , COUNT(*) FROM products GROUP BY PRODUCT_NAME"
        context = StageContext(nlq="q", database=toy_database, dvq=dvq)
        repair_stage.run(context)
        assert context.executes is True
        assert context.repair_rounds == 0
        assert context.dvq == dvq
        assert context.records == []

    def test_unparseable_candidate_stops_without_progress(self, toy_database, repair_stage):
        context = StageContext(nlq="q", database=toy_database, dvq="SELECT nonsense")
        repair_stage.run(context)
        assert context.executes is False
        assert context.outcome.category == "parse_error"
        # one LLM round was spent, then the loop detected no progress
        assert context.repair_rounds == 1
        assert context.meta["repair"]["final_ok"] is False

    def test_round_budget_is_respected(self, toy_database):
        llm = SimulatedChatModel()
        from repro.core.annotator import DatabaseAnnotator

        debugger = AnnotationBasedDebugger(annotator=DatabaseAnnotator(llm), llm=llm)
        stage = ExecutionGuidedRepairStage(debugger, InterpreterBackend(), max_rounds=1)
        context = StageContext(
            nlq="q", database=toy_database, dvq="Visualize BAR SELECT A , B FROM nowhere"
        )
        stage.run(context)
        assert context.repair_rounds <= 1

    def test_rejects_zero_rounds(self, toy_database, repair_stage):
        with pytest.raises(ValueError):
            ExecutionGuidedRepairStage(
                repair_stage.debugger, repair_stage.backend, max_rounds=0
            )

    def test_verify_reuses_repair_verdict(self, toy_database, repair_stage):
        calls = []
        backend = repair_stage.backend
        original = backend.explain_failure

        def counting(query, database):
            calls.append(query)
            return original(query, database)

        backend.explain_failure = counting
        try:
            dvq = (
                "Visualize BAR SELECT PRODUCT_NAME , COUNT(*) FROM products "
                "GROUP BY PRODUCT_NAME"
            )
            context = StageContext(nlq="q", database=toy_database, dvq=dvq)
            plan = StagePlan(stages=(repair_stage, VerifyExecutionStage(backend)))
            plan.run(context)
            assert context.executes is True
            assert len(calls) == 1  # verify reused the repair stage's verdict
        finally:
            backend.explain_failure = original


class TestPlanEdits:
    def _plan(self, small_dataset) -> StagePlan:
        model = GRED(GREDConfig(top_k=3)).fit(small_dataset.train, small_dataset.catalog)
        return model.plan

    def test_without_and_contains(self, small_dataset):
        plan = self._plan(small_dataset)
        assert "retune" in plan
        trimmed = plan.without("retune")
        assert trimmed.names() == ("generate", "debug")
        assert "retune" not in trimmed
        # removing a missing stage is a no-op, and the original is untouched
        assert trimmed.without("retune").names() == trimmed.names()
        assert plan.names() == ("generate", "retune", "debug")

    def test_with_stage_anchors(self, small_dataset):
        plan = self._plan(small_dataset)
        verify = VerifyExecutionStage(InterpreterBackend())
        assert plan.with_stage(verify).names()[-1] == "verify"
        assert plan.with_stage(verify, before="retune").names() == (
            "generate",
            "verify",
            "retune",
            "debug",
        )
        assert plan.with_stage(verify, after="retune").names() == (
            "generate",
            "retune",
            "verify",
            "debug",
        )
        with pytest.raises(ValueError):
            plan.with_stage(verify, before="retune", after="debug")

    def test_replaced_and_stage_lookup(self, small_dataset):
        plan = self._plan(small_dataset)
        verify = VerifyExecutionStage(InterpreterBackend())
        swapped = plan.replaced("debug", verify)
        assert swapped.names() == ("generate", "retune", "verify")
        assert plan.stage("retune") is plan.stages[1]
        with pytest.raises(KeyError):
            plan.stage("no_such_stage")
        with pytest.raises(KeyError):
            plan.replaced("no_such_stage", verify)

    def test_edited_plan_runs(self, small_dataset):
        model = GRED(GREDConfig(top_k=3)).fit(small_dataset.train, small_dataset.catalog)
        model.plan = model.plan.without("retune")
        example = small_dataset.test[0]
        trace = model.trace(example.nlq, small_dataset.catalog.get(example.db_id))
        assert [record.stage for record in trace.records] == ["generate", "debug"]
        assert trace.dvq_rtn == trace.dvq_gen  # compat property falls through

    def test_build_plan_requires_backend_for_repair(self, small_dataset):
        model = GRED(GREDConfig(top_k=3, max_repair_rounds=1)).fit(
            small_dataset.train, small_dataset.catalog
        )
        model.execution_backend = None
        with pytest.raises(ValueError):
            model.build_plan()


class TestMiddleware:
    def test_timing_middleware_accumulates_per_stage(self, toy_database, repair_stage):
        dvq = "Visualize BAR SELECT PRODUCT_NAME , COUNT(*) FROM products GROUP BY PRODUCT_NAME"
        verify = VerifyExecutionStage(repair_stage.backend)
        plan = StagePlan(stages=(verify, verify), middleware=(TimingMiddleware(),))
        context = StageContext(nlq="q", database=toy_database, dvq=dvq)
        plan.run(context)
        assert set(context.timings) == {"verify"}
        assert context.timings["verify"] >= 0.0

    def test_cache_stats_middleware_attributes_hits_to_stages(self, small_dataset):
        model = GRED(GREDConfig(top_k=3, use_llm_cache=True)).fit(
            small_dataset.train, small_dataset.catalog
        )
        example = small_dataset.test[0]
        database = small_dataset.catalog.get(example.db_id)
        first = StageContext(nlq=example.nlq, database=database)
        model.plan.run(first)
        assert set(first.meta["llm_cache"]) == {"generate", "retune", "debug"}
        assert first.meta["llm_cache"]["generate"]["misses"] >= 1
        second = StageContext(nlq=example.nlq, database=database)
        model.plan.run(second)
        assert second.meta["llm_cache"]["generate"]["hits"] >= 1
        assert second.meta["llm_cache"]["generate"]["misses"] == 0

    def test_retry_middleware_reruns_flaky_stage(self):
        class Flaky:
            name = "flaky"

            def __init__(self):
                self.calls = 0

            def run(self, context):
                self.calls += 1
                if self.calls == 1:
                    raise ConnectionError("transient")
                context.advance(self.name, "Visualize BAR SELECT A , B FROM t")

        flaky = Flaky()
        plan = StagePlan(stages=(flaky,), middleware=(RetryMiddleware(attempts=2),))
        context = plan.run(StageContext(nlq="q", database=None))
        assert flaky.calls == 2
        assert context.meta["retry:flaky"] == 1
        assert context.dvq

    def test_retry_middleware_rolls_back_partial_mutations(self):
        class HalfwayBroken:
            """Mutates the context like a mid-loop repair round, then dies once."""

            name = "halfway"

            def __init__(self):
                self.calls = 0

            def run(self, context):
                self.calls += 1
                context.advance(self.name, f"Visualize BAR attempt {self.calls}")
                context.repair_rounds += 1
                if self.calls == 1:
                    raise ConnectionError("transient mid-stage")

        stage = HalfwayBroken()
        plan = StagePlan(stages=(stage,), middleware=(RetryMiddleware(attempts=2),))
        context = plan.run(StageContext(nlq="q", database=None))
        # the aborted attempt's record and counter increment were rolled back
        assert [record.dvq for record in context.records] == ["Visualize BAR attempt 2"]
        assert context.repair_rounds == 1

    def test_retry_middleware_reraises_after_budget(self):
        class Broken:
            name = "broken"

            def run(self, context):
                raise ConnectionError("down")

        plan = StagePlan(stages=(Broken(),), middleware=(RetryMiddleware(attempts=2),))
        with pytest.raises(ConnectionError):
            plan.run(StageContext(nlq="q", database=None))
        with pytest.raises(ValueError):
            RetryMiddleware(attempts=0)


class TestNotFittedError:
    def test_trace_names_trace(self, small_dataset):
        example = small_dataset.test[0]
        database = small_dataset.catalog.get(example.db_id)
        with pytest.raises(NotFittedError, match=r"GRED\.trace called before fit"):
            GRED().trace(example.nlq, database)

    def test_predict_names_predict(self, small_dataset):
        example = small_dataset.test[0]
        database = small_dataset.catalog.get(example.db_id)
        with pytest.raises(NotFittedError, match=r"GRED\.predict called before fit"):
            GRED().predict(example.nlq, database)

    def test_is_a_runtime_error(self, small_dataset):
        example = small_dataset.test[0]
        database = small_dataset.catalog.get(example.db_id)
        with pytest.raises(RuntimeError):
            GRED().predict(example.nlq, database)

    def test_retriever_names_actual_caller(self):
        from repro.core import GREDRetriever

        with pytest.raises(NotFittedError, match=r"retrieve_by_dvq called before prepare"):
            GREDRetriever().retrieve_by_dvq("Visualize BAR", top_k=1)


class TestRepairStats:
    def test_observe_and_since(self):
        stats = RepairStats()
        stats.observe({"initially_ok": True, "rounds": 0, "final_ok": True})
        assert stats.attempted == 0
        stats.observe({"initially_ok": False, "rounds": 2, "final_ok": True})
        stats.observe({"initially_ok": False, "rounds": 1, "final_ok": False})
        assert (stats.attempted, stats.repaired, stats.rounds_total) == (2, 1, 3)
        assert stats.repair_rate == 0.5
        earlier = stats.snapshot()
        stats.observe({"initially_ok": False, "rounds": 1, "final_ok": True})
        delta = stats.since(earlier)
        assert (delta.attempted, delta.repaired, delta.rounds_total) == (1, 1, 1)


class TestRepairVariantBuilders:
    def test_build_repair_variants_produces_distinct_pair(self):
        from repro.core import build_repair_variants

        variants = build_repair_variants(top_k=3)
        assert len(variants) == 2
        names = list(variants)
        assert names[1].endswith("+ repair")
        configs = [model.config for model in variants.values()]
        assert configs[0].max_repair_rounds == 0 and configs[1].max_repair_rounds == 2

    def test_build_repair_variants_rejects_zero_rounds(self):
        from repro.core import build_repair_variants

        with pytest.raises(ValueError):
            build_repair_variants(max_repair_rounds=0)


class TestRepairLoopUplift:
    def test_execution_rate_strictly_improves_with_repair(
        self, small_dataset, robustness_suite
    ):
        """The acceptance bar: repair on > repair off, on the seeded corpus."""
        runs = {}
        for rounds in (0, 2):
            model = GRED(
                GREDConfig(
                    top_k=5,
                    use_debugger=False,
                    verify_execution=True,
                    max_repair_rounds=rounds,
                )
            ).fit(small_dataset.train, small_dataset.catalog)
            evaluator = ModelEvaluator(limit=40, execution_backend="interpreter")
            runs[rounds] = evaluator.evaluate(
                model, robustness_suite.variant(VariantKind.BOTH)
            )
        assert runs[2].execution_rate > runs[0].execution_rate
        summary = runs[2].repair_summary
        assert summary is not None and summary.repaired >= 1
        assert runs[0].repair_summary is None  # loop disabled -> no summary

    def test_trace_records_repair_history(self, small_dataset, robustness_suite):
        model = GRED(
            GREDConfig(top_k=5, use_debugger=False, max_repair_rounds=2)
        ).fit(small_dataset.train, small_dataset.catalog)
        catalog = robustness_suite.catalog
        repaired_traces = []
        for example in robustness_suite.dual_variant.examples[:25]:
            trace = model.trace(example.nlq, catalog.get(example.db_id))
            assert trace.executes is not None  # repair loop always verdicts
            if trace.repair_rounds:
                repaired_traces.append(trace)
        assert repaired_traces, "expected at least one repaired trace in 25 examples"
        trace = repaired_traces[0]
        assert trace.dvq_repaired is not None
        assert trace.final == trace.dvq_repaired
        assert model.repair_stats.attempted >= len(repaired_traces)


class TestGREDTraceCompat:
    def test_equality_ignores_timings_and_executes(self):
        from repro.pipeline import StageRecord

        records = [StageRecord(stage="generate", dvq="Visualize BAR", changed=True)]
        left = GREDTrace(nlq="q", records=list(records), timings={"generate": 1.0})
        right = GREDTrace(nlq="q", records=list(records), timings={"generate": 2.0})
        assert left == right

    def test_empty_trace_properties(self):
        trace = GREDTrace(nlq="q")
        assert trace.final == ""
        assert trace.dvq_gen == "" and trace.dvq_rtn == "" and trace.dvq_dbg == ""
        assert trace.dvq_repaired is None
