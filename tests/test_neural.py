"""Tests for the NumPy neural substrate."""

import numpy as np
import pytest

from repro.neural import (
    BagOfWordsFeaturizer,
    MLPClassifier,
    MultiHeadSketchClassifier,
    TrainingConfig,
    Vocabulary,
)


class TestVocabulary:
    def test_unknown_maps_to_zero(self):
        vocabulary = Vocabulary(["alpha", "beta"])
        assert vocabulary.index("missing") == 0
        assert vocabulary.index("alpha") > 0

    def test_from_corpus_orders_by_frequency(self):
        vocabulary = Vocabulary.from_corpus([["a", "a", "b"], ["a", "c"]])
        assert vocabulary.index("a") == 1

    def test_max_size_is_enforced(self):
        vocabulary = Vocabulary.from_corpus([[f"tok{i}" for i in range(100)]], max_size=10)
        assert len(vocabulary) == 10

    def test_round_trip(self):
        vocabulary = Vocabulary(["x"])
        assert vocabulary.token(vocabulary.index("x")) == "x"


class TestFeaturizer:
    def test_vectors_are_normalised(self):
        featurizer = BagOfWordsFeaturizer().fit(["show the salary", "show the budget"])
        vector = featurizer.transform_one("show the salary")
        assert np.isclose(np.linalg.norm(vector), 1.0)

    def test_bigrams_included(self):
        featurizer = BagOfWordsFeaturizer()
        assert any("_" in token for token in featurizer.tokens("group by salary"))

    def test_transform_shape(self):
        featurizer = BagOfWordsFeaturizer().fit(["a b c", "d e"])
        assert featurizer.transform(["a", "d"]).shape == (2, featurizer.dimension)


class TestMLPClassifier:
    def _toy_data(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(200, 10))
        labels = (inputs[:, 0] + inputs[:, 1] > 0).astype(int)
        return inputs, labels

    def test_learns_a_linearly_separable_problem(self):
        inputs, labels = self._toy_data()
        classifier = MLPClassifier(10, 2, TrainingConfig(epochs=30, hidden_size=16, learning_rate=0.02))
        classifier.fit(inputs, labels)
        assert classifier.accuracy(inputs, labels) > 0.9

    def test_loss_decreases(self):
        inputs, labels = self._toy_data()
        classifier = MLPClassifier(10, 2, TrainingConfig(epochs=15, hidden_size=16))
        classifier.fit(inputs, labels)
        assert classifier.loss_history[-1] < classifier.loss_history[0]

    def test_probabilities_sum_to_one(self):
        inputs, labels = self._toy_data()
        classifier = MLPClassifier(10, 2, TrainingConfig(epochs=2))
        classifier.fit(inputs, labels)
        probabilities = classifier.predict_proba(inputs[:5])
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_empty_fit_is_noop(self):
        classifier = MLPClassifier(4, 2)
        classifier.fit(np.zeros((0, 4)), [])
        assert classifier.loss_history == []


class TestMultiHead:
    def _train(self):
        questions = [
            "draw a bar chart of salary by name",
            "draw a bar chart of budget by city",
            "show a pie chart of countries",
            "show a pie chart of categories",
            "plot a line chart of sales over time",
            "plot a line chart of price over years",
        ] * 5
        targets = (
            [{"chart": "BAR", "agg": "AVG"}] * 2
            + [{"chart": "PIE", "agg": "COUNT"}] * 2
            + [{"chart": "LINE", "agg": "SUM"}] * 2
        ) * 5
        classifier = MultiHeadSketchClassifier(TrainingConfig(epochs=20, hidden_size=16))
        return classifier.fit(questions, targets), questions, targets

    def test_predicts_all_heads(self):
        classifier, _questions, _targets = self._train()
        prediction = classifier.predict("draw a bar chart of wages by person")
        assert set(prediction) == {"chart", "agg"}
        assert prediction["chart"] == "BAR"

    def test_training_accuracy_is_high(self):
        classifier, questions, targets = self._train()
        scores = classifier.accuracy(questions, targets)
        assert all(score > 0.9 for score in scores.values())

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MultiHeadSketchClassifier().predict("anything")

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            MultiHeadSketchClassifier().fit(["a"], [])
