"""Smoke tests for the experiment workbench (the table/figure regeneration harness)."""

import pytest

from repro.experiments import Workbench, WorkbenchConfig
from repro.evaluation.report import format_accuracy_table, format_overall_series
from repro.robustness.variants import VariantKind


@pytest.fixture(scope="module")
def workbench():
    return Workbench(WorkbenchConfig(scale=0.04, seed=5, evaluation_limit=25, gred_top_k=5))


class TestWorkbench:
    def test_dataset_and_suite_are_cached(self, workbench):
        assert workbench.dataset is workbench.dataset
        assert workbench.suite is workbench.suite

    def test_table_results_contain_all_models(self, workbench):
        results = workbench.table_results(VariantKind.NLQ)
        assert set(results) == {"Seq2Vis", "Transformer", "RGVisNet", "GRED (Ours)"}
        table = format_accuracy_table(results, title="Table 1")
        assert "GRED (Ours)" in table

    def test_figure3_series_shows_a_drop(self, workbench):
        series = workbench.figure3_series()
        for model_name, values in series.items():
            assert values[VariantKind.ORIGINAL.value] >= values[VariantKind.BOTH.value], model_name
        assert format_overall_series(series)

    def test_case_study_has_all_models(self, workbench):
        case = workbench.case_study(index=0)
        assert {"NLQ", "Target", "Seq2Vis", "Transformer", "RGVisNet", "GRED"} <= set(case)

    def test_evaluation_limit_is_respected(self, workbench):
        run = workbench.evaluate_on_variant(workbench.baselines()["Transformer"], VariantKind.ORIGINAL)
        assert len(run.records) <= 25
