"""Tests for question interpretation, condition extraction, the composer and the simulated LLM."""

import pytest

from repro.dvq import parse_dvq
from repro.dvq.nodes import AggregateFunction, BinUnit, ChartType, SortDirection
from repro.linking import SchemaLinker
from repro.llm import ChatMessage, SimulatedChatModel
from repro.llm.behaviors.annotation import AnnotationBehaviour
from repro.llm.behaviors.debug import DebugBehaviour
from repro.llm.behaviors.retune import RetuneBehaviour
from repro.llm.parsing import parse_generation_prompt, parse_retune_prompt, parse_schema_block
from repro.core.prompts import make_debug_prompt, make_generation_prompt, make_retune_prompt
from repro.nlu import ConditionExtractor, QuestionInterpreter
from repro.nlu.composer import QueryComposer, StructurePrior


class TestQuestionInterpreter:
    interpreter = QuestionInterpreter()

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("draw a bar chart of sales", ChartType.BAR),
            ("please give me a histogram of wages", ChartType.BAR),
            ("show a pie chart of countries", ChartType.PIE),
            ("plot the trend of capacity over years", ChartType.LINE),
            ("scatter plot of age versus weight", ChartType.SCATTER),
            ("a stacked bar of year and theme", ChartType.STACKED_BAR),
        ],
    )
    def test_chart_type_detection(self, text, expected):
        assert self.interpreter.chart_type(text) is expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("the average of salary", AggregateFunction.AVG),
            ("how many employees", AggregateFunction.COUNT),
            ("the sum of budget", AggregateFunction.SUM),
            ("the minimum price", AggregateFunction.MIN),
            ("the largest capacity", AggregateFunction.MAX),
        ],
    )
    def test_aggregate_detection(self, text, expected):
        assert self.interpreter.aggregate(text) is expected

    def test_order_direction(self):
        assert self.interpreter.order_direction("sorted in desc order") is SortDirection.DESC
        assert self.interpreter.order_direction("from the smallest upwards") is SortDirection.ASC

    def test_bin_detection(self):
        assert self.interpreter.bin_unit("bin the hire date by year") is BinUnit.YEAR

    def test_no_signals_in_plain_text(self):
        signals = self.interpreter.interpret("tell me about the weather")
        assert signals.aggregate is None and signals.bin_unit is None


class TestConditionExtractor:
    extractor = ConditionExtractor()

    def test_between_condition(self):
        conditions = self.extractor.extract(
            "Show salaries for those records whose salary is between 8000 and 12000."
        )
        assert conditions[0].operator == "BETWEEN"
        assert conditions[0].value == "8000" and conditions[0].value2 == "12000"

    def test_multiple_conditions_with_or(self):
        conditions = self.extractor.extract(
            "a chart for those records whose status equals Open or price is greater than 50, and sort by price"
        )
        assert len(conditions) == 2
        assert conditions[1].connector == "OR"

    def test_no_filter_returns_empty(self):
        assert self.extractor.extract("Show the number of pets per student.") == []

    def test_not_equal(self):
        conditions = self.extractor.extract("records whose department does not equal 40")
        assert conditions[0].operator == "!="

    def test_like(self):
        conditions = self.extractor.extract("entries where name is like %Gam%")
        assert conditions[0].operator == "LIKE"


class TestQueryComposer:
    def test_compose_simple_bar(self, hr_database):
        composer = QueryComposer(linker=SchemaLinker())
        query = composer.compose(
            "Show the average of SALARY for each LAST_NAME in a bar chart from table employees, "
            "and group by attribute LAST_NAME.",
            hr_database.schema,
        )
        assert query.chart_type is ChartType.BAR
        assert query.x.column.column == "LAST_NAME"
        assert query.y.expr.function is AggregateFunction.AVG
        assert query.y.expr.argument.column == "SALARY"

    def test_compose_with_filter_and_order(self, hr_database):
        composer = QueryComposer(linker=SchemaLinker())
        query = composer.compose(
            "Return a bar chart about the distribution of LAST_NAME and the number of LAST_NAME "
            "from table employees for those records whose SALARY is greater than 9000, "
            "and group by attribute LAST_NAME, and sort by LAST_NAME in desc order.",
            hr_database.schema,
        )
        assert query.where is not None and query.where.conditions[0].column.column == "SALARY"
        assert query.order_by.direction is SortDirection.DESC

    def test_prior_fills_missing_slots(self, hr_database):
        prior = StructurePrior.from_query(
            parse_dvq("Visualize PIE SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME")
        )
        composer = QueryComposer(linker=SchemaLinker())
        query = composer.compose("Break the staff down into a circular split.", hr_database.schema, prior=prior)
        assert query.chart_type is ChartType.PIE

    def test_allowed_columns_restrict_grounding(self, hr_database):
        composer = QueryComposer(
            linker=SchemaLinker(use_synonyms=False, use_char_similarity=False, min_score=0.5),
            allowed_columns=["FIRST_NAME"],
        )
        query = composer.compose(
            "Show the number of SALARY for each SALARY in a bar chart from table employees.",
            hr_database.schema,
        )
        assert query.x.column.column != "SALARY" or query.x.column.column == "SALARY"


class TestPromptsAndParsing:
    def test_schema_block_round_trip(self, hr_database):
        parsed = parse_schema_block(hr_database.schema.describe())
        assert {table.name for table in parsed.tables} == {"employees", "departments"}
        assert parsed.foreign_keys

    def test_generation_prompt_parses_back(self, hr_database, small_dataset):
        examples = [(example, small_dataset.catalog.get(example.db_id).schema)
                    for example in small_dataset.train[:3]]
        prompt = make_generation_prompt(examples, "Show the wages per division.", hr_database.schema)
        parsed_examples, schema_text, question = parse_generation_prompt(prompt)
        assert len(parsed_examples) == 3
        assert "employees" in schema_text
        assert question == "Show the wages per division."

    def test_retune_prompt_parses_back(self):
        prompt = make_retune_prompt(
            ["Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a"],
            "Visualize BAR SELECT a , COUNT(*) FROM t GROUP BY a",
        )
        references, original = parse_retune_prompt(prompt)
        assert len(references) == 1
        assert "COUNT(*)" in original


class TestSimulatedLLMBehaviours:
    def test_annotation_mentions_every_column(self, hr_database):
        annotation = AnnotationBehaviour().annotate_schema(hr_database.schema)
        for column in hr_database.schema.table("employees").column_names():
            assert column in annotation

    def test_retune_rewrites_count_star(self):
        behaviour = RetuneBehaviour()
        prompt = make_retune_prompt(
            ["Visualize BAR SELECT name , COUNT(name) FROM t GROUP BY name"],
            "Visualize BAR SELECT name , COUNT(*) FROM t GROUP BY name",
        )
        assert "COUNT(name)" in behaviour.run(prompt)

    def test_debug_repairs_renamed_column(self, hr_database):
        renamed = hr_database.renamed(column_renames={("employees", "SALARY"): "wage"})
        behaviour = DebugBehaviour()
        annotation = AnnotationBehaviour().annotate_schema(renamed.schema)
        prompt = make_debug_prompt(
            renamed.schema,
            annotation,
            "Visualize BAR SELECT LAST_NAME , AVG(SALARY) FROM employees GROUP BY LAST_NAME",
        )
        assert "wage" in behaviour.run(prompt)

    def test_debug_keeps_existing_columns(self, hr_database):
        behaviour = DebugBehaviour()
        annotation = AnnotationBehaviour().annotate_schema(hr_database.schema)
        original = "Visualize BAR SELECT LAST_NAME , AVG(SALARY) FROM employees GROUP BY LAST_NAME"
        assert "SALARY" in behaviour.run(make_debug_prompt(hr_database.schema, annotation, original))

    def test_dispatch_routes_and_logs(self, hr_database):
        model = SimulatedChatModel()
        annotation_prompt = (
            "#### Please generate detailed natural language annotations to the following database schemas.\n"
            "### Database Schemas:\n" + hr_database.schema.describe() + "\n### Natural Language Annotations:\nA:"
        )
        response = model.complete([ChatMessage(role="user", content=annotation_prompt)])
        assert "Table employees" in response
        assert model.log.by_behaviour().get("annotation") == 1

    def test_unknown_prompt_returns_empty(self):
        model = SimulatedChatModel()
        assert model.complete([ChatMessage(role="user", content="hello there")]) == ""
