"""Tests for the nvBench-Rob construction (synonyms, rewriter, renamer, suite)."""

from repro.dvq import parse_dvq
from repro.executor import DVQExecutor
from repro.robustness import (
    NLQRewriter,
    RobustnessSuiteBuilder,
    SchemaRenamer,
    VariantKind,
    default_lexicon,
)


class TestSynonymLexicon:
    def test_known_word_has_synonyms(self):
        assert "wage" in default_lexicon().synonyms_for("salary")

    def test_unknown_word_has_no_synonyms(self):
        assert default_lexicon().synonyms_for("qwertyuiop") == []

    def test_related_words_are_symmetric(self):
        lexicon = default_lexicon()
        assert lexicon.are_related("salary", "wage")
        assert lexicon.are_related("wage", "salary")

    def test_abbreviations_are_related(self):
        assert default_lexicon().are_related("department", "dept")

    def test_identical_words_are_related(self):
        assert default_lexicon().are_related("city", "CITY")


class TestNLQRewriter:
    def test_rewrite_changes_the_question(self, small_dataset):
        rewriter = NLQRewriter()
        example = small_dataset.test[0]
        result = rewriter.rewrite(example.nlq, key=example.example_id)
        assert result.rewritten != result.original

    def test_rewrite_is_deterministic(self, small_dataset):
        example = small_dataset.test[0]
        first = NLQRewriter(seed=4).rewrite(example.nlq, key="k")
        second = NLQRewriter(seed=4).rewrite(example.nlq, key="k")
        assert first.rewritten == second.rewritten

    def test_aggressive_rewrite_removes_explicit_column_mentions(self, small_dataset):
        rewriter = NLQRewriter(word_probability=1.0, phrase_probability=1.0)
        removed = 0
        checked = 0
        for example in small_dataset.test[:30]:
            query = parse_dvq(example.dvq)
            column = query.x.column.column
            if "_" not in column or column.lower() not in example.nlq.lower():
                continue
            checked += 1
            result = rewriter.rewrite(example.nlq, key=example.example_id)
            if column.lower() not in result.rewritten.lower():
                removed += 1
        if checked:
            assert removed / checked > 0.7

    def test_numbers_are_preserved(self):
        rewriter = NLQRewriter(word_probability=1.0, phrase_probability=1.0)
        result = rewriter.rewrite("Show records whose salary is between 8000 and 12000.", key="n")
        assert "8000" in result.rewritten and "12000" in result.rewritten


class TestSchemaRenamer:
    def test_plan_covers_every_column(self, hr_database):
        plan = SchemaRenamer(seed=2).plan_for(hr_database)
        expected = {(t.name, c.name) for t in hr_database.schema.tables for c in t.columns}
        assert set(plan.column_renames) == expected

    def test_renamed_database_keeps_row_counts(self, hr_database):
        renamer = SchemaRenamer(seed=2)
        renamed, _plan = renamer.apply_to_database(hr_database)
        assert renamed.row_count() == hr_database.row_count()
        assert renamed.name.endswith("_robust")

    def test_rename_rate_is_substantial(self, hr_database):
        _renamed, plan = SchemaRenamer(seed=2).apply_to_database(hr_database)
        assert plan.rename_rate() > 0.15

    def test_rename_rate_scales_with_probability(self, hr_database):
        aggressive = SchemaRenamer(seed=2, rename_probability=1.0).plan_for(hr_database)
        gentle = SchemaRenamer(seed=2, rename_probability=0.1).plan_for(hr_database)
        assert aggressive.rename_rate() >= gentle.rename_rate()

    def test_no_duplicate_column_names_after_rename(self, hr_database):
        renamed, _plan = SchemaRenamer(seed=2).apply_to_database(hr_database)
        for table in renamed.schema.tables:
            names = [column.name.lower() for column in table.columns]
            assert len(names) == len(set(names))

    def test_rewritten_gold_dvq_executes_on_renamed_database(self, hr_database):
        renamer = SchemaRenamer(seed=2)
        renamed, plan = renamer.apply_to_database(hr_database)
        dvq = "Visualize BAR SELECT LAST_NAME , AVG(SALARY) FROM employees GROUP BY LAST_NAME"
        rewritten = renamer.rewrite_dvq(dvq, plan)
        DVQExecutor().execute(parse_dvq(rewritten), renamed)

    def test_plan_is_deterministic(self, hr_database):
        first = SchemaRenamer(seed=9).plan_for(hr_database)
        second = SchemaRenamer(seed=9).plan_for(hr_database)
        assert first.column_renames == second.column_renames


class TestRobustnessSuite:
    def test_suite_has_three_variant_sets_of_equal_size(self, robustness_suite):
        sizes = {
            len(robustness_suite.original),
            len(robustness_suite.nlq_variant),
            len(robustness_suite.schema_variant),
            len(robustness_suite.dual_variant),
        }
        assert len(sizes) == 1

    def test_nlq_variant_keeps_gold_dvq(self, robustness_suite):
        for original, variant in zip(robustness_suite.original, robustness_suite.nlq_variant):
            assert original.dvq == variant.dvq
            assert original.db_id == variant.db_id

    def test_schema_variant_points_to_renamed_databases(self, robustness_suite):
        assert all(example.db_id.endswith("_robust") for example in robustness_suite.schema_variant)

    def test_dual_variant_combines_both_perturbations(self, robustness_suite):
        for nlq_var, dual in zip(robustness_suite.nlq_variant, robustness_suite.dual_variant):
            assert nlq_var.nlq == dual.nlq
        for schema_var, dual in zip(robustness_suite.schema_variant, robustness_suite.dual_variant):
            assert schema_var.dvq == dual.dvq

    def test_catalog_contains_original_and_renamed_databases(self, robustness_suite):
        renamed = [name for name in robustness_suite.catalog.names() if name.endswith("_robust")]
        assert renamed
        assert len(robustness_suite.catalog) > len(renamed)

    def test_schema_variant_gold_queries_execute(self, robustness_suite):
        executor = DVQExecutor()
        for example in robustness_suite.schema_variant.examples[:60]:
            database = robustness_suite.catalog.get(example.db_id)
            executor.execute(parse_dvq(example.dvq), database)

    def test_variant_lookup(self, robustness_suite):
        assert robustness_suite.variant(VariantKind.NLQ) is robustness_suite.nlq_variant
        assert set(robustness_suite.all_variants()) == set(VariantKind)
