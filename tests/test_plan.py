"""Unit tests for the logical-plan IR, planner, optimizer and columnar engine."""

from __future__ import annotations

import pytest

from repro.database.database import Database
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.executor import (
    ColumnarBackend,
    InterpreterBackend,
    resolve_backend,
)
from repro.plan import (
    Comparison,
    Connective,
    ConstPredicate,
    Filter,
    Join,
    OptimizerConfig,
    Project,
    Scan,
    fold_predicate,
    iter_nodes,
    optimize,
    output_labels,
    plan_query,
)
from repro.plan.nodes import HASH, NESTED_LOOP


def _schema():
    return build_schema(
        "plan_unit",
        [
            (
                "employees",
                [
                    ("EMP_ID", ColumnType.NUMBER, "id"),
                    ("NAME", ColumnType.TEXT, "name"),
                    ("SALARY", ColumnType.NUMBER, "salary"),
                    ("HIRE_DATE", ColumnType.DATE, "date"),
                    ("ACTIVE", ColumnType.BOOLEAN, "flag"),
                    ("DEPT_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "departments",
                [
                    ("DEPT_ID", ColumnType.NUMBER, "id"),
                    ("DEPT_NAME", ColumnType.TEXT, "department"),
                    ("CITY", ColumnType.TEXT, "city"),
                ],
            ),
        ],
        foreign_keys=[("employees", "DEPT_ID", "departments", "DEPT_ID")],
    )


@pytest.fixture()
def database():
    db = Database.from_rows(
        _schema(),
        {
            "employees": [
                {"EMP_ID": 1, "NAME": "Ada", "SALARY": 120, "HIRE_DATE": "2020-02-03",
                 "ACTIVE": True, "DEPT_ID": 1},
                {"EMP_ID": 2, "NAME": "Bob", "SALARY": 80, "HIRE_DATE": "2021-07-15",
                 "ACTIVE": False, "DEPT_ID": 2},
                {"EMP_ID": 3, "NAME": "ada", "SALARY": None, "HIRE_DATE": None,
                 "ACTIVE": True, "DEPT_ID": 1},
                {"EMP_ID": 4, "NAME": None, "SALARY": 200, "HIRE_DATE": "2020-11-30",
                 "ACTIVE": None, "DEPT_ID": 2},
                {"EMP_ID": 5, "NAME": "Eve", "SALARY": 80, "HIRE_DATE": "2019-01-01",
                 "ACTIVE": False, "DEPT_ID": 1},
            ],
            "departments": [
                {"DEPT_ID": 1, "DEPT_NAME": "Engineering", "CITY": "Zurich"},
                {"DEPT_ID": 2, "DEPT_NAME": "Sales", "CITY": None},
            ],
        },
    )
    return db


JOIN_QUERY = (
    "Visualize BAR SELECT DEPT_NAME , AVG(SALARY) FROM employees AS T1 "
    "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
    "WHERE SALARY > 50 GROUP BY DEPT_NAME ORDER BY AVG(SALARY) DESC LIMIT 2"
)


class TestPlanner:
    def test_canonical_spine_shape(self, database):
        plan = plan_query(parse_dvq(JOIN_QUERY), database.schema)
        kinds = [type(node).__name__ for node in iter_nodes(plan)]
        assert kinds == [
            "Limit", "Sort", "Aggregate", "Filter", "Join", "Scan", "Scan",
        ]

    def test_explain_renders_operator_tree(self, database):
        plan = plan_query(parse_dvq(JOIN_QUERY), database.schema)
        text = plan.explain()
        assert "Limit(2)" in text
        assert "Sort(#1 DESC)" in text
        assert "Aggregate(keys=[T2.DEPT_NAME]" in text
        assert "Join(T1.DEPT_ID = T2.DEPT_ID, strategy=nested_loop)" in text
        assert "Scan(employees AS T1" in text

    def test_resolution_is_case_insensitive_and_alias_aware(self, database):
        plan = plan_query(
            parse_dvq("Visualize BAR SELECT t1.name , salary FROM employees AS T1"),
            database.schema,
        )
        project = next(node for node in iter_nodes(plan) if isinstance(node, Project))
        assert [o.column.column for o in project.outputs] == ["NAME", "SALARY"]
        assert {o.column.effective for o in project.outputs} == {"T1"}

    def test_qualifying_by_underlying_table_name_despite_alias(self, database):
        plan = plan_query(
            parse_dvq("Visualize BAR SELECT employees.NAME , SALARY FROM employees AS T1"),
            database.schema,
        )
        project = next(node for node in iter_nodes(plan) if isinstance(node, Project))
        # the effective (SQL-visible) qualifier is still the alias
        assert project.outputs[0].column.effective == "T1"

    def test_output_labels_match_select_renderings(self, database):
        plan = plan_query(parse_dvq(JOIN_QUERY), database.schema)
        assert output_labels(plan) == ("DEPT_NAME", "AVG(SALARY)")

    def test_swapped_join_sides_detected(self, database):
        # the ON clause names the new table on the left side
        plan = plan_query(
            parse_dvq(
                "Visualize BAR SELECT DEPT_NAME , COUNT(*) FROM employees "
                "JOIN departments ON departments.DEPT_ID = employees.DEPT_ID "
                "GROUP BY DEPT_NAME"
            ),
            database.schema,
        )
        join = next(node for node in iter_nodes(plan) if isinstance(node, Join))
        assert join.build_key == "left"

    def test_missing_identifiers_fail_with_engine_categories(self, database):
        backend = ColumnarBackend()
        missing_table = backend.explain_failure(
            parse_dvq("Visualize BAR SELECT * FROM nowhere"), database
        )
        assert missing_table.category == "missing_table"
        assert missing_table.missing == ("nowhere",)
        missing_column = backend.explain_failure(
            parse_dvq("Visualize BAR SELECT NOPE , COUNT(*) FROM employees GROUP BY NOPE"),
            database,
        )
        assert missing_column.category == "missing_column"
        assert missing_column.missing == ("NOPE",)


class TestOptimizer:
    def test_pushdown_moves_single_table_conjuncts_below_join(self, database):
        plan = plan_query(parse_dvq(JOIN_QUERY), database.schema)
        optimized = optimize(plan, OptimizerConfig(hash_join=False, pruning=False))
        join = next(node for node in iter_nodes(optimized) if isinstance(node, Join))
        assert isinstance(join.left, Filter), optimized.explain()
        assert "SALARY > 50" in join.left.predicate.render()
        # no residual filter remains above the join
        assert not any(
            isinstance(node, Filter) and isinstance(node.child, Join)
            for node in iter_nodes(optimized)
        )

    def test_or_across_tables_is_not_pushed(self, database):
        query = parse_dvq(
            "Visualize BAR SELECT DEPT_NAME , COUNT(*) FROM employees AS T1 "
            "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
            "WHERE SALARY > 50 OR CITY = 'Zurich' GROUP BY DEPT_NAME"
        )
        plan = plan_query(query, database.schema)
        optimized = optimize(plan, OptimizerConfig())
        filter_above_join = next(
            node
            for node in iter_nodes(optimized)
            if isinstance(node, Filter) and isinstance(node.child, Join)
        )
        assert "OR" in filter_above_join.predicate.render()

    def test_pruning_narrows_scans_but_keeps_join_keys(self, database):
        plan = plan_query(parse_dvq(JOIN_QUERY), database.schema)
        optimized = optimize(plan, OptimizerConfig())
        scans = {
            node.effective: node.columns
            for node in iter_nodes(optimized)
            if isinstance(node, Scan)
        }
        assert scans["T1"] == ("SALARY", "DEPT_ID")
        assert scans["T2"] == ("DEPT_ID", "DEPT_NAME")

    def test_hash_join_selected_only_with_rule_enabled(self, database):
        plan = plan_query(parse_dvq(JOIN_QUERY), database.schema)

        def strategies(p):
            return [node.strategy for node in iter_nodes(p) if isinstance(node, Join)]

        assert strategies(plan) == [NESTED_LOOP]
        assert strategies(optimize(plan, OptimizerConfig())) == [HASH]
        assert strategies(optimize(plan, OptimizerConfig(hash_join=False))) == [NESTED_LOOP]

    def test_null_sentinel_folds_to_explicit_null_test(self, database):
        plan = plan_query(
            parse_dvq("Visualize BAR SELECT NAME , SALARY FROM employees WHERE NAME = 'null'"),
            database.schema,
        )
        filter_node = next(node for node in iter_nodes(plan) if isinstance(node, Filter))
        folded = fold_predicate(filter_node.predicate)
        assert isinstance(folded, Connective) and folded.op == "OR"
        assert folded.left.condition.operator == "IS NULL"

    def test_impossible_comparisons_fold_to_false(self, database):
        plan = plan_query(
            parse_dvq("Visualize BAR SELECT NAME , SALARY FROM employees WHERE SALARY > 'null'"),
            database.schema,
        )
        filter_node = next(node for node in iter_nodes(plan) if isinstance(node, Filter))
        # "> 'null'" is a string comparison, not a NULL literal: stays put
        assert not isinstance(fold_predicate(filter_node.predicate), ConstPredicate)
        sentinel = Comparison(
            column=filter_node.predicate.column,
            condition=filter_node.predicate.condition.__class__(
                column=filter_node.predicate.condition.column, operator=">", value=None
            ),
        )
        assert fold_predicate(sentinel) == ConstPredicate(False)

    def test_rule_names_reflect_toggles(self):
        assert OptimizerConfig().rule_names() == (
            "fold_constants", "pushdown", "join_order", "build_side",
            "filter_order", "parallel_ops", "hash_join", "pruning",
        )
        assert OptimizerConfig(pushdown=False, join_order=False).rule_names() == (
            "fold_constants", "build_side", "filter_order", "parallel_ops",
            "hash_join", "pruning",
        )


#: Edge-case queries the engines must agree on beyond the random corpus.
EDGE_QUERIES = [
    "Visualize BAR SELECT NAME , SALARY FROM employees",
    "Visualize BAR SELECT NAME , COUNT(*) FROM employees GROUP BY NAME",
    "Visualize PIE SELECT ACTIVE , COUNT(DISTINCT SALARY) FROM employees GROUP BY ACTIVE",
    "Visualize BAR SELECT COUNT(*) , SUM(SALARY) FROM employees",
    "Visualize BAR SELECT COUNT(*) , SUM(SALARY) FROM employees WHERE SALARY > 100000",
    "Visualize LINE SELECT HIRE_DATE , AVG(SALARY) FROM employees BIN HIRE_DATE BY YEAR",
    "Visualize LINE SELECT HIRE_DATE , COUNT(*) FROM employees BIN HIRE_DATE BY WEEKDAY",
    "Visualize BAR SELECT SALARY , COUNT(SALARY) FROM employees BIN SALARY BY INTERVAL",
    "Visualize BAR SELECT NAME , SALARY FROM employees WHERE NAME = 'null'",
    "Visualize BAR SELECT NAME , SALARY FROM employees WHERE NAME != 'null'",
    "Visualize BAR SELECT NAME , SALARY FROM employees WHERE NAME = 'ADA'",
    "Visualize BAR SELECT NAME , SALARY FROM employees "
    "WHERE NAME IN ( 'Ada' , 'eve' ) OR SALARY BETWEEN 70 AND 90",
    "Visualize BAR SELECT NAME , SALARY FROM employees WHERE NAME NOT LIKE 'A%'",
    "Visualize BAR SELECT NAME , SALARY FROM employees "
    "WHERE SALARY IS NOT NULL AND NAME NOT IN ( 'Bob' )",
    "Visualize BAR SELECT NAME , SALARY FROM employees ORDER BY SALARY DESC",
    "Visualize BAR SELECT NAME , SALARY FROM employees ORDER BY NAME ASC LIMIT 3",
    "Visualize BAR SELECT DEPT_NAME , COUNT(*) FROM employees AS T1 "
    "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID GROUP BY DEPT_NAME",
    "Visualize STACKED BAR SELECT DEPT_NAME , SUM(SALARY) , CITY FROM employees AS T1 "
    "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
    "GROUP BY DEPT_NAME , CITY ORDER BY DEPT_NAME ASC",
    "Visualize BAR SELECT DEPT_NAME , MAX(SALARY) FROM employees "
    "JOIN departments ON departments.DEPT_ID = employees.DEPT_ID "
    "WHERE CITY = 'Zurich' GROUP BY DEPT_NAME LIMIT 1",
]

#: Optimizer settings the engine matrix sweeps: everything, nothing, and each
#: rule individually disabled.
OPTIMIZER_VARIANTS = {
    "all": OptimizerConfig(),
    "no-pushdown": OptimizerConfig(pushdown=False),
    "no-pruning": OptimizerConfig(pruning=False),
    "no-hash-join": OptimizerConfig(hash_join=False),
    "no-folding": OptimizerConfig(fold_constants=False),
}


class TestColumnarEngine:
    @pytest.mark.parametrize("query_text", EDGE_QUERIES)
    @pytest.mark.parametrize(
        "config", OPTIMIZER_VARIANTS.values(), ids=OPTIMIZER_VARIANTS.keys()
    )
    def test_matches_interpreter_on_edge_cases(self, database, query_text, config):
        query = parse_dvq(query_text)
        expected = InterpreterBackend().execute(query, database)
        backend = ColumnarBackend(optimizer_config=config)
        actual = backend.execute(query, database)
        assert actual.columns == expected.columns
        assert actual.rows == expected.rows, backend.plan(query, database).explain()

    @pytest.mark.parametrize("query_text", EDGE_QUERIES)
    def test_matches_interpreter_without_optimizer(self, database, query_text):
        query = parse_dvq(query_text)
        expected = InterpreterBackend().execute(query, database)
        actual = ColumnarBackend(optimize=False).execute(query, database)
        assert actual.rows == expected.rows

    def test_empty_filter_result_keeps_columns(self, database):
        query = parse_dvq("Visualize BAR SELECT NAME , SALARY FROM employees WHERE SALARY > 9999")
        result = ColumnarBackend().execute(query, database)
        assert result.columns == ["NAME", "SALARY"]
        assert result.rows == []

    def test_aggregates_only_query_is_empty_on_empty_input(self):
        database = Database(_schema())  # no rows inserted
        query = parse_dvq("Visualize BAR SELECT COUNT(*) , SUM(SALARY) FROM employees")
        assert ColumnarBackend().execute(query, database).rows == []
        assert InterpreterBackend().execute(query, database).rows == []

    @pytest.mark.parametrize("optimizer_on", [True, False], ids=["opt", "noopt"])
    def test_degenerate_join_keys_on_the_new_table_match_interpreter(
        self, database, optimizer_on
    ):
        # both ON keys name the newly joined table: the interpreter skips
        # every row pair (empty join); the engine must not crash
        query = parse_dvq(
            "Visualize BAR SELECT NAME , COUNT(*) FROM employees "
            "JOIN departments ON departments.DEPT_ID = departments.DEPT_ID "
            "GROUP BY NAME"
        )
        backend = ColumnarBackend(optimize=optimizer_on)
        expected = InterpreterBackend().execute(query, database)
        assert backend.execute(query, database).rows == expected.rows == []
        assert backend.explain_failure(query, database).ok

    @pytest.mark.parametrize("optimizer_on", [True, False], ids=["opt", "noopt"])
    def test_join_keys_on_the_old_table_use_name_based_fallback(
        self, database, optimizer_on
    ):
        # both ON keys resolve into the already-joined table; the interpreter
        # matches the right key by bare column name in the NEW table
        # (employees.DEPT_ID = departments.DEPT_ID here, despite the
        # qualifier) — the engine must reproduce that, optimizer or not
        query = parse_dvq(
            "Visualize BAR SELECT DEPT_NAME , COUNT(*) FROM employees "
            "JOIN departments ON employees.DEPT_ID = employees.DEPT_ID "
            "GROUP BY DEPT_NAME ORDER BY DEPT_NAME ASC"
        )
        backend = ColumnarBackend(optimize=optimizer_on)
        expected = InterpreterBackend().execute(query, database)
        actual = backend.execute(query, database)
        assert actual.rows == expected.rows
        assert len(actual.rows) > 0

    def test_column_store_invalidated_by_insert(self, database):
        table = database.table("employees")
        store = table.column_store()
        assert len(store["NAME"]) == 5
        table.insert({"EMP_ID": 6, "NAME": "Fay", "SALARY": 10, "DEPT_ID": 1})
        assert len(table.column_store()["NAME"]) == 6
        query = parse_dvq("Visualize BAR SELECT NAME , COUNT(*) FROM employees GROUP BY NAME")
        expected = InterpreterBackend().execute(query, database)
        assert ColumnarBackend().execute(query, database).rows == expected.rows


class TestBackendRegistration:
    def test_resolve_backend_knows_columnar(self):
        backend = resolve_backend("columnar")
        assert backend.name == "columnar"
        assert backend.optimize is True
        assert resolve_backend("columnar", optimize=False).optimize is False

    def test_unknown_backend_names_all_engines(self):
        with pytest.raises(ValueError, match="columnar"):
            resolve_backend("postgres")

    def test_instances_pass_through(self):
        backend = ColumnarBackend(optimize=False)
        assert resolve_backend(backend) is backend


class TestSQLLoweringFromPlan:
    @pytest.mark.parametrize(
        "query_text",
        [
            JOIN_QUERY,  # pushdown lands on the join's LEFT scan
            # a dimension-side predicate: pushdown lands on the RIGHT scan
            "Visualize BAR SELECT DEPT_NAME , COUNT(*) FROM employees AS T1 "
            "JOIN departments AS T2 ON T1.DEPT_ID = T2.DEPT_ID "
            "WHERE CITY = 'Zurich' GROUP BY DEPT_NAME",
        ],
        ids=["left-filter", "right-filter"],
    )
    def test_compiler_rejects_non_canonical_plans(self, database, query_text):
        from repro.sql import DVQToSQLCompiler

        plan = optimize(plan_query(parse_dvq(query_text), database.schema))
        with pytest.raises(ValueError, match="canonical"):
            DVQToSQLCompiler().compile_plan(plan)

    def test_compiler_accepts_canonical_plans(self, database):
        from repro.sql import DVQToSQLCompiler

        query = parse_dvq(JOIN_QUERY)
        compiled_from_query = DVQToSQLCompiler().compile(query, database.schema)
        compiled_from_plan = DVQToSQLCompiler().compile_plan(
            plan_query(query, database.schema)
        )
        assert compiled_from_plan == compiled_from_query
        assert compiled_from_query.columns == ("DEPT_NAME", "AVG(SALARY)")
