"""Tests for the embedding substrate and the schema linker."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.embeddings import EmbedderConfig, TextEmbedder, VectorStore
from repro.embeddings.tokenization import char_ngrams, content_words, split_identifier, word_tokens
from repro.linking import SchemaLinker


class TestTokenization:
    def test_split_snake_case(self):
        assert split_identifier("HIRE_DATE") == ["HIRE", "DATE"]

    def test_split_camel_case(self):
        assert split_identifier("DeptName") == ["Dept", "Name"]

    def test_word_tokens_include_identifier_parts(self):
        tokens = word_tokens("show HIRE_DATE please")
        assert "hire" in tokens and "date" in tokens

    def test_content_words_drop_stopwords(self):
        assert "the" not in content_words("show the salary of the staff")

    def test_char_ngrams_have_boundaries(self):
        assert char_ngrams("a", n=3) == ["#a#"]
        grams = char_ngrams("salary", n=3)
        assert grams[0].startswith("#") and grams[-1].endswith("#")


class TestTextEmbedder:
    def test_embeddings_are_unit_norm(self):
        embedder = TextEmbedder()
        vector = embedder.embed("show the average salary per department")
        assert np.isclose(np.linalg.norm(vector), 1.0)

    def test_similar_texts_score_higher_than_dissimilar(self):
        embedder = TextEmbedder()
        base = "show the average salary for each department"
        close = "display the average salary for every department"
        far = "list all airports located in Tokyo"
        assert embedder.similarity(base, close) > embedder.similarity(base, far)

    def test_embedding_is_deterministic(self):
        embedder = TextEmbedder()
        text = "bar chart of wages"
        assert np.allclose(embedder.embed(text), embedder.embed(text))

    def test_fit_changes_weights(self):
        corpus = ["salary by department", "salary by job", "capacity of cinemas"]
        unfitted = TextEmbedder().embed("salary by department")
        fitted = TextEmbedder().fit(corpus).embed("salary by department")
        assert not np.allclose(unfitted, fitted)

    def test_batch_shape(self):
        embedder = TextEmbedder(EmbedderConfig(dimensions=64))
        matrix = embedder.embed_batch(["a", "b", "c"])
        assert matrix.shape == (3, 64)

    def test_empty_batch(self):
        assert TextEmbedder().embed_batch([]).shape[0] == 0

    @settings(max_examples=30, deadline=None)
    @given(st.text(min_size=1, max_size=60))
    def test_any_text_embeds_without_error(self, text):
        vector = TextEmbedder(EmbedderConfig(dimensions=32)).embed(text)
        assert vector.shape == (32,)
        assert np.all(np.isfinite(vector))


class TestVectorStore:
    def _store(self):
        embedder = TextEmbedder(EmbedderConfig(dimensions=128))
        store = VectorStore(embedder)
        store.add("1", "average salary per department", {"id": 1})
        store.add("2", "number of pets per student", {"id": 2})
        store.add("3", "capacity of each cinema by year", {"id": 3})
        return store

    def test_search_returns_most_relevant_first(self):
        hits = self._store().search("mean salary for every department", top_k=2)
        assert hits[0].payload["id"] == 1

    def test_search_scores_are_descending(self):
        hits = self._store().search("pets owned by students", top_k=3)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_caps_results(self):
        assert len(self._store().search("salary", top_k=2)) == 2

    def test_empty_store_returns_nothing(self):
        store = VectorStore(TextEmbedder())
        assert store.search("anything", top_k=5) == []

    def test_add_many(self):
        store = VectorStore(TextEmbedder())
        store.add_many([("a", "text one", 1), ("b", "text two", 2)])
        assert len(store) == 2


class TestSchemaLinker:
    def test_exact_column_mention_scores_one(self, hr_database):
        linker = SchemaLinker()
        candidate = linker.best_column("HIRE_DATE", hr_database.schema)
        assert candidate.column == "HIRE_DATE"
        assert candidate.score == pytest.approx(1.0, abs=0.1)

    def test_semantic_linker_resolves_synonyms(self, hr_database):
        linker = SchemaLinker(use_synonyms=True)
        candidate = linker.best_column("wage", hr_database.schema)
        assert candidate is not None and candidate.column == "SALARY"

    def test_lexical_linker_fails_on_synonyms(self, hr_database):
        linker = SchemaLinker(use_synonyms=False, use_char_similarity=False, min_score=0.5)
        candidate = linker.best_column("wage", hr_database.schema)
        assert candidate is None or candidate.column != "SALARY"

    def test_map_foreign_column_recovers_rename(self, hr_database):
        linker = SchemaLinker(use_synonyms=True)
        renamed = hr_database.schema.renamed(column_renames={("employees", "SALARY"): "wage"})
        candidate = linker.map_foreign_column("SALARY", renamed, preferred_tables=["employees"])
        assert candidate is not None and candidate.column == "wage"

    def test_map_foreign_column_keeps_existing(self, hr_database):
        linker = SchemaLinker()
        candidate = linker.map_foreign_column("SALARY", hr_database.schema)
        assert candidate.column == "SALARY" and candidate.score == 1.0

    def test_question_links_find_mentioned_columns(self, hr_database):
        linker = SchemaLinker()
        links = linker.question_links(
            "Show the average SALARY for each LAST_NAME in a bar chart", hr_database.schema
        )
        linked = {link.column for link in links}
        assert "SALARY" in linked and "LAST_NAME" in linked
