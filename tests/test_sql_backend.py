"""Unit tests for the DVQ->SQL compiler, the SQLite backend and the wiring."""

from __future__ import annotations

import pytest

from repro.core import GRED, GREDConfig
from repro.database import DataGenerator
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.evaluation.evaluator import ModelEvaluator
from repro.executor import (
    ExecutionError,
    InterpreterBackend,
    canonical_value,
    resolve_backend,
)
from repro.sql import DVQToSQLCompiler, SQLiteBackend
from repro.vegalite.renderer import ChartRenderer


def _tiny_text_db(rows):
    """A two-column table for targeted NULL / case-tie regression tests."""
    from repro.database import Database

    schema = build_schema(
        "tiny_text",
        [("items", [("VAL", ColumnType.NUMBER, "id"), ("NAME", ColumnType.TEXT, "name")])],
    )
    return Database.from_rows(
        schema, {"items": [{"NAME": name, "VAL": val} for name, val in rows]}
    )


@pytest.fixture(scope="module")
def sql_database():
    schema = build_schema(
        "sql_unit",
        [
            (
                "employees",
                [
                    ("EMPLOYEE_ID", ColumnType.NUMBER, "id"),
                    ("FIRST_NAME", ColumnType.TEXT, "first_name"),
                    ("LAST_NAME", ColumnType.TEXT, "last_name"),
                    ("SALARY", ColumnType.NUMBER, "salary"),
                    ("HIRE_DATE", ColumnType.DATE, "date"),
                    ("DEPARTMENT_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "departments",
                [
                    ("DEPARTMENT_ID", ColumnType.NUMBER, "id"),
                    ("DEPARTMENT_NAME", ColumnType.TEXT, "department"),
                    ("BUDGET", ColumnType.NUMBER, "budget"),
                ],
            ),
        ],
        foreign_keys=[("employees", "DEPARTMENT_ID", "departments", "DEPARTMENT_ID")],
    )
    return DataGenerator(seed=3, rows_per_table=30).populate(schema)


class TestCompiler:
    def test_compiles_group_by_aggregate(self, sql_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME"
        )
        compiled = DVQToSQLCompiler().compile(query, sql_database.schema)
        assert compiled.sql.startswith("SELECT ")
        assert '"employees"."LAST_NAME"' in compiled.sql
        assert "GROUP BY" in compiled.sql
        assert compiled.columns == ("LAST_NAME", "COUNT(LAST_NAME)")

    def test_parameters_are_bound_not_inlined(self, sql_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , SALARY FROM employees WHERE SALARY > 10000"
        )
        compiled = DVQToSQLCompiler().compile(query, sql_database.schema)
        assert "10000" not in compiled.sql
        assert compiled.params == (10000,)

    def test_where_connectors_associate_left_to_right(self, sql_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , SALARY FROM employees "
            "WHERE SALARY > 1 OR SALARY < 5 AND SALARY != 3"
        )
        compiled = DVQToSQLCompiler().compile(query, sql_database.schema)
        where = compiled.sql.split("WHERE", 1)[1]
        # ((a OR b) AND c), not a OR (b AND c)
        assert where.index("OR") < where.index("AND")
        assert where.count("(") == 2

    def test_alias_resolution_tolerates_table_name(self, sql_database):
        # qualifying by the real table name while aliased must compile to the alias
        query = parse_dvq(
            "Visualize BAR SELECT employees.LAST_NAME , COUNT(employees.LAST_NAME) "
            "FROM employees AS T1 GROUP BY employees.LAST_NAME"
        )
        compiled = DVQToSQLCompiler().compile(query, sql_database.schema)
        assert '"T1"."LAST_NAME"' in compiled.sql

    def test_unknown_table_raises_execution_error(self, sql_database):
        query = parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM missing GROUP BY a")
        with pytest.raises(ExecutionError):
            DVQToSQLCompiler().compile(query, sql_database.schema)

    def test_unknown_column_raises_execution_error(self, sql_database):
        query = parse_dvq("Visualize BAR SELECT wage , COUNT(wage) FROM employees GROUP BY wage")
        with pytest.raises(ExecutionError):
            DVQToSQLCompiler().compile(query, sql_database.schema)

    def test_limit_compiles_to_bound_limit_with_tiebreak(self, sql_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees "
            "GROUP BY LAST_NAME ORDER BY COUNT(LAST_NAME) DESC LIMIT 3"
        )
        compiled = DVQToSQLCompiler().compile(query, sql_database.schema)
        assert compiled.sql.endswith("LIMIT ?")
        assert compiled.params[-1] == 3
        # DESC sorts NULLs first like the interpreter, via a portable IS NULL
        # term rather than the NULLS FIRST syntax (SQLite >= 3.30 only)
        assert "IS NULL ) DESC" in compiled.sql
        assert "COLLATE BINARY" in compiled.sql  # exact-text tiebreak for the top-k cut


class TestSQLiteBackend:
    def test_matches_interpreter_on_basic_aggregate(self, sql_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , AVG(SALARY) FROM employees "
            "GROUP BY LAST_NAME ORDER BY AVG(SALARY) DESC"
        )
        expected = InterpreterBackend().execute(query, sql_database)
        actual = SQLiteBackend().execute(query, sql_database)
        assert actual.columns == expected.columns
        assert actual.rows == expected.rows

    def test_aggregate_only_query_returns_no_rows_on_empty_input(self, sql_database):
        # the interpreter yields zero rows when no row survives the filter;
        # the compiled SQL must not fall back to SQL's single NULL row
        query = parse_dvq("Visualize BAR SELECT COUNT(*) FROM employees WHERE SALARY > 999999")
        assert SQLiteBackend().execute(query, sql_database).rows == []
        assert InterpreterBackend().execute(query, sql_database).rows == []

    def test_missing_column_raises(self, sql_database):
        query = parse_dvq("Visualize BAR SELECT wage , COUNT(wage) FROM employees GROUP BY wage")
        backend = SQLiteBackend()
        with pytest.raises(ExecutionError):
            backend.execute(query, sql_database)
        assert not backend.can_execute(query, sql_database)

    def test_connection_is_cached_and_refreshable(self, sql_database):
        backend = SQLiteBackend()
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME"
        )
        backend.execute(query, sql_database)
        first = backend._connections[sql_database]
        backend.execute(query, sql_database)
        assert backend._connections[sql_database] is first
        backend.refresh(sql_database)
        assert sql_database not in backend._connections

    def test_on_disk_storage(self, sql_database, tmp_path):
        backend = SQLiteBackend(directory=str(tmp_path))
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME"
        )
        result = backend.execute(query, sql_database)
        assert (tmp_path / "sql_unit.sqlite3").exists()
        assert result.rows == InterpreterBackend().execute(query, sql_database).rows
        backend.close()

    def test_limit_cut_is_identical_across_backends(self, sql_database):
        query = parse_dvq(
            "Visualize BAR SELECT FIRST_NAME , COUNT(*) FROM employees "
            "GROUP BY FIRST_NAME ORDER BY COUNT(*) DESC LIMIT 4"
        )
        expected = InterpreterBackend().execute(query, sql_database)
        actual = SQLiteBackend().execute(query, sql_database)
        assert len(actual) == 4
        assert actual.rows == expected.rows

    def test_not_in_with_null_literal_drops_null_rows_on_both_backends(self):
        # a NULL list item matches NULL rows in the interpreter's IN, so the
        # negation must drop them — SQL's three-valued NOT would keep them
        database = _tiny_text_db(
            [("Alpha", 1), (None, 2), ("Beta", 3)]
        )
        query = parse_dvq(
            "Visualize BAR SELECT VAL , NAME FROM items WHERE NAME NOT IN ( NULL , 'Beta' )"
        )
        expected = InterpreterBackend().execute(query, database)
        actual = SQLiteBackend().execute(query, database)
        assert expected.x_values() == [1]
        assert actual.rows == expected.rows

    def test_in_with_null_literal_matches_null_rows_on_both_backends(self):
        database = _tiny_text_db([("Alpha", 1), (None, 2), ("Beta", 3)])
        query = parse_dvq(
            "Visualize BAR SELECT VAL , NAME FROM items WHERE NAME IN ( NULL , 'Beta' )"
        )
        expected = InterpreterBackend().execute(query, database)
        actual = SQLiteBackend().execute(query, database)
        assert sorted(expected.x_values()) == [2, 3]
        assert actual.rows == expected.rows

    def test_limit_cut_agrees_on_case_variant_ties(self):
        # 'abc' and 'ABC' tie under NOCASE; the top-k cut must break the tie
        # by exact text on both engines (BINARY tiebreak term)
        database = _tiny_text_db([("abc", 1), ("ABC", 2), ("zzz", 3)])
        query = parse_dvq("Visualize BAR SELECT NAME , VAL FROM items ORDER BY NAME ASC LIMIT 1")
        expected = InterpreterBackend().execute(query, database)
        actual = SQLiteBackend().execute(query, database)
        assert actual.rows == expected.rows
        query = parse_dvq("Visualize BAR SELECT NAME , VAL FROM items ORDER BY NAME DESC LIMIT 2")
        expected = InterpreterBackend().execute(query, database)
        actual = SQLiteBackend().execute(query, database)
        assert actual.rows == expected.rows


class TestNormalisation:
    def test_canonical_value_coercions(self):
        assert canonical_value(True) == 1 and isinstance(canonical_value(True), int)
        assert canonical_value(6.0) == 6 and isinstance(canonical_value(6.0), int)
        assert canonical_value(2.5) == 2.5
        assert canonical_value("x") == "x"
        assert canonical_value(None) is None

    def test_sum_of_integers_is_integral_on_both_backends(self, sql_database):
        query = parse_dvq("Visualize BAR SELECT SUM(SALARY) FROM employees")
        for backend in (InterpreterBackend(), SQLiteBackend()):
            (row,) = backend.execute(query, sql_database).rows
            assert isinstance(row[0], int)


class TestBackendFactory:
    def test_resolve_names(self):
        assert resolve_backend("interpreter").name == "interpreter"
        assert resolve_backend("sqlite").name == "sqlite"

    def test_resolve_passes_instances_through(self):
        backend = SQLiteBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("postgres")


class TestWiring:
    def test_renderer_with_sqlite_backend(self, sql_database):
        text = (
            "Visualize BAR SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME"
        )
        default_chart = ChartRenderer().render_text(text, sql_database)
        sqlite_chart = ChartRenderer(backend=SQLiteBackend()).render_text(text, sql_database)
        assert sorted(sqlite_chart.result.rows) == sorted(default_chart.result.rows)

    def test_evaluator_execution_rate(self, small_dataset):
        class GoldModel:
            def predict(self, nlq, database):
                return next(
                    example.dvq for example in small_dataset.examples if example.nlq == nlq
                )

        evaluator = ModelEvaluator(limit=20, execution_backend="sqlite")
        run = evaluator.evaluate(GoldModel(), small_dataset)
        assert run.execution_rate == 1.0
        assert all(record.executes for record in run.records)

    def test_evaluator_execution_rate_default_off(self, small_dataset):
        class EmptyModel:
            def predict(self, nlq, database):
                return ""

        run = ModelEvaluator(limit=5).evaluate(EmptyModel(), small_dataset)
        assert run.execution_rate is None
        assert all(record.executes is None for record in run.records)

    def test_gred_verify_execution_flags_traces(self, small_dataset):
        config = GREDConfig(top_k=3, verify_execution=True, execution_backend="sqlite")
        model = GRED(config).fit(small_dataset.train, small_dataset.catalog)
        example = small_dataset.test[0]
        trace = model.trace(example.nlq, small_dataset.catalog.get(example.db_id))
        assert trace.executes in (True, False)
        assert "verify" in trace.timings

    def test_gred_verification_off_by_default(self, small_dataset):
        model = GRED(GREDConfig(top_k=3)).fit(small_dataset.train, small_dataset.catalog)
        example = small_dataset.test[0]
        trace = model.trace(example.nlq, small_dataset.catalog.get(example.db_id))
        assert trace.executes is None
