"""Tests for the DVQ language toolchain (tokenizer, parser, serializer, components)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dvq import (
    ChartType,
    DVQParseError,
    DVQTokenizeError,
    extract_components,
    normalize_dvq_text,
    parse_dvq,
    queries_match,
    serialize_dvq,
    tokenize,
)
from repro.dvq.nodes import (
    AggregateExpr,
    AggregateFunction,
    BinClause,
    BinUnit,
    ColumnRef,
    Condition,
    DVQuery,
    OrderClause,
    SelectItem,
    SortDirection,
    WhereClause,
)
from repro.dvq.tokens import TokenType

SIMPLE = "Visualize BAR SELECT JOB_ID , AVG(MANAGER_ID) FROM employees GROUP BY JOB_ID"
COMPLEX = (
    "Visualize BAR SELECT JOB_ID , AVG(MANAGER_ID) FROM employees "
    "WHERE salary BETWEEN 8000 AND 12000 AND commission_pct != 'null' OR department_id != 40 "
    "GROUP BY JOB_ID ORDER BY JOB_ID ASC"
)


class TestTokenizer:
    def test_simple_token_stream_ends_with_eof(self):
        tokens = tokenize(SIMPLE)
        assert tokens[-1].type is TokenType.EOF

    def test_keywords_are_uppercased(self):
        tokens = tokenize("visualize bar select a from t")
        assert tokens[0].value == "VISUALIZE"
        assert tokens[0].lexeme == "visualize"

    def test_identifiers_preserve_case(self):
        tokens = tokenize("Visualize BAR SELECT Dept_ID FROM employees")
        identifiers = [t for t in tokens if t.type is TokenType.IDENTIFIER]
        assert identifiers[0].lexeme == "Dept_ID"

    def test_string_literal(self):
        tokens = tokenize("WHERE name = 'Finance'")
        strings = [t for t in tokens if t.type is TokenType.STRING]
        assert strings[0].value == "Finance"

    def test_unterminated_string_raises(self):
        with pytest.raises(DVQTokenizeError):
            tokenize("WHERE name = 'Finance")

    def test_unexpected_character_raises(self):
        with pytest.raises(DVQTokenizeError):
            tokenize("SELECT a ; b")

    def test_numbers_and_operators(self):
        tokens = tokenize("WHERE x >= 12.5")
        assert any(t.type is TokenType.NUMBER and t.value == "12.5" for t in tokens)
        assert any(t.type is TokenType.OPERATOR and t.value == ">=" for t in tokens)

    def test_none_input_raises(self):
        with pytest.raises(DVQTokenizeError):
            tokenize(None)


class TestParser:
    def test_parses_chart_type(self):
        assert parse_dvq(SIMPLE).chart_type is ChartType.BAR

    def test_parses_two_word_chart_type(self):
        query = parse_dvq("Visualize STACKED BAR SELECT a , SUM(b) FROM t GROUP BY a")
        assert query.chart_type is ChartType.STACKED_BAR

    def test_parses_aggregate(self):
        query = parse_dvq(SIMPLE)
        assert isinstance(query.y.expr, AggregateExpr)
        assert query.y.expr.function is AggregateFunction.AVG

    def test_parses_where_connectors(self):
        query = parse_dvq(COMPLEX)
        assert len(query.where.conditions) == 3
        assert list(query.where.connectors) == ["AND", "OR"]

    def test_parses_between(self):
        query = parse_dvq(COMPLEX)
        condition = query.where.conditions[0]
        assert condition.operator == "BETWEEN"
        assert (condition.value, condition.value2) == (8000, 12000)

    def test_parses_order_direction(self):
        query = parse_dvq(COMPLEX)
        assert query.order_by.direction is SortDirection.ASC

    def test_parses_bin_clause(self):
        query = parse_dvq("Visualize LINE SELECT d , AVG(v) FROM t BIN d BY YEAR")
        assert query.bin.unit is BinUnit.YEAR

    def test_parses_join(self):
        query = parse_dvq(
            "Visualize BAR SELECT a , COUNT(a) FROM t1 JOIN t2 ON t1.id = t2.id GROUP BY a"
        )
        assert query.joins[0].table == "t2"

    def test_parses_count_star(self):
        query = parse_dvq("Visualize BAR SELECT a , COUNT(*) FROM t GROUP BY a")
        assert query.y.expr.argument.column == "*"

    def test_parses_count_distinct(self):
        query = parse_dvq("Visualize BAR SELECT a , COUNT(DISTINCT b) FROM t GROUP BY a")
        assert query.y.expr.distinct is True

    def test_parses_is_not_null(self):
        query = parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t WHERE b IS NOT NULL GROUP BY a")
        condition = query.where.conditions[0]
        assert condition.operator == "IS NULL" and condition.negated

    def test_parses_in_list(self):
        query = parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t WHERE b IN ( 1 , 2 ) GROUP BY a")
        assert query.where.conditions[0].value == (1, 2)

    def test_missing_select_raises(self):
        with pytest.raises(DVQParseError):
            parse_dvq("Visualize BAR FROM t")

    def test_trailing_garbage_raises(self):
        with pytest.raises(DVQParseError):
            parse_dvq(SIMPLE + " EXTRA TOKENS HERE")

    def test_unknown_bin_unit_raises(self):
        with pytest.raises(DVQParseError):
            parse_dvq("Visualize LINE SELECT d , AVG(v) FROM t BIN d BY DECADE")


class TestSerializer:
    @pytest.mark.parametrize("text", [SIMPLE, COMPLEX])
    def test_round_trip_is_stable(self, text):
        once = serialize_dvq(parse_dvq(text))
        twice = serialize_dvq(parse_dvq(once))
        assert once == twice

    def test_round_trip_preserves_components(self):
        original = parse_dvq(COMPLEX)
        reparsed = parse_dvq(serialize_dvq(original))
        assert extract_components(original) == extract_components(reparsed)

    def test_serialize_string_literal_quoted(self):
        query = parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t WHERE b = 'Finance' GROUP BY a")
        assert "'Finance'" in serialize_dvq(query)


class TestComponents:
    def test_vis_component(self):
        assert extract_components(parse_dvq(SIMPLE)).vis.chart_type == "BAR"

    def test_axis_component_is_case_insensitive(self):
        left = extract_components(parse_dvq(SIMPLE))
        right = extract_components(parse_dvq(SIMPLE.replace("JOB_ID", "job_id")))
        assert left.axis == right.axis

    def test_data_component_detects_filter_difference(self):
        left = extract_components(parse_dvq(COMPLEX))
        right = extract_components(parse_dvq(COMPLEX.replace("8000", "9000")))
        assert left.data != right.data

    def test_queries_match_tolerates_whitespace(self):
        assert queries_match(SIMPLE, "  ".join(SIMPLE.split()))

    def test_queries_match_rejects_chart_change(self):
        assert not queries_match(SIMPLE, SIMPLE.replace("BAR", "PIE"))

    def test_unparseable_prediction_only_matches_identical_text(self):
        assert not queries_match("not a query", SIMPLE)
        assert queries_match("not a query", "NOT A QUERY")

    def test_normalize_falls_back_for_garbage(self):
        assert normalize_dvq_text("  garbage   text ") == "GARBAGE TEXT"


# -- property-based tests -----------------------------------------------------

_identifier = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,10}", fullmatch=True)
_chart = st.sampled_from(list(ChartType))
_aggregate = st.sampled_from(list(AggregateFunction))
_direction = st.sampled_from(list(SortDirection))


@st.composite
def dvq_queries(draw):
    x_column = draw(_identifier)
    y_column = draw(_identifier)
    table = draw(_identifier)
    chart = draw(_chart)
    select = [SelectItem(ColumnRef(column=x_column))]
    if draw(st.booleans()):
        select.append(
            SelectItem(AggregateExpr(function=draw(_aggregate), argument=ColumnRef(column=y_column)))
        )
    else:
        select.append(SelectItem(ColumnRef(column=y_column)))
    where = None
    if draw(st.booleans()):
        where = WhereClause(
            conditions=(
                Condition(
                    column=ColumnRef(column=draw(_identifier)),
                    operator=draw(st.sampled_from(["=", "!=", ">", "<", ">=", "<="])),
                    value=draw(st.integers(min_value=0, max_value=10000)),
                ),
            ),
            connectors=(),
        )
    order = None
    if draw(st.booleans()):
        order = OrderClause(expr=ColumnRef(column=x_column), direction=draw(_direction))
    bin_clause = None
    if draw(st.booleans()):
        bin_clause = BinClause(column=ColumnRef(column=x_column), unit=draw(st.sampled_from(list(BinUnit))))
    group = (ColumnRef(column=x_column),) if draw(st.booleans()) else ()
    return DVQuery(
        chart_type=chart,
        select=tuple(select),
        table=table,
        where=where,
        group_by=group,
        order_by=order,
        bin=bin_clause,
    )


class TestDVQProperties:
    @settings(max_examples=60, deadline=None)
    @given(dvq_queries())
    def test_serialize_parse_round_trip(self, query):
        text = serialize_dvq(query)
        reparsed = parse_dvq(text)
        assert extract_components(reparsed) == extract_components(query)

    @settings(max_examples=60, deadline=None)
    @given(dvq_queries())
    def test_every_query_matches_itself(self, query):
        text = serialize_dvq(query)
        assert queries_match(text, text)

    @settings(max_examples=40, deadline=None)
    @given(dvq_queries())
    def test_referenced_columns_include_select_columns(self, query):
        referenced = {column.column.lower() for column in query.referenced_columns()}
        assert query.x.column.column.lower() in referenced or query.x.column.column == "*"
