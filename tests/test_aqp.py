"""Cost-based optimization and AQP: unit, invariance and property tests.

Three layers of guarantees for the PR's new machinery:

* **engine statistics + samples** — cached per table, invalidated on insert,
  fast NumPy collection agreeing with the exact collectors;
* **cost-based rules** — join-order enumeration, build-side selection and
  filter-cascade ordering are semantics-preserving: over fuzzer-generated
  workloads the cost-based engine matches the rule-based engine and the
  interpreter oracle row-for-row;
* **AQP** — the sampling rewrite declines exactly where documented, keyed
  per-group COUNTs are exact, and across >= 50 fuzzer-generated aggregate
  queries every observed relative error stays inside the reported CLT bound.
"""

from __future__ import annotations

import random

import pytest

from repro.database.database import Database
from repro.database.sampling import KEYED, UNIFORM
from repro.database.schema import ColumnType, build_schema
from repro.database.statistics import collect_column_statistics
from repro.dvq import parse_dvq
from repro.executor import ColumnarBackend, InterpreterBackend
from repro.plan.cost import CostModel
from repro.plan.nodes import Filter, Join, Sample, Scan, iter_nodes
from repro.plan.sampling import SamplingConfig, rewrite_with_sampling
from repro.workload import WorkloadGenerator

ROWS = 20_000
_CATEGORIES = ["Grocery", "Clothing", "Garden", "Toys", "Media", "Sports"]


def _sales_database(rows: int = ROWS) -> Database:
    schema = build_schema(
        "aqp_test",
        [
            (
                "sales",
                [
                    ("SALE_ID", ColumnType.NUMBER, "id"),
                    ("AMOUNT", ColumnType.NUMBER, "price"),
                    ("CATEGORY", ColumnType.TEXT, "category"),
                    ("SOLD_AT", ColumnType.DATE, "date"),
                    ("REGION_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "regions",
                [
                    ("REGION_ID", ColumnType.NUMBER, "id"),
                    ("REGION_NAME", ColumnType.TEXT, "region"),
                ],
            ),
        ],
        foreign_keys=[("sales", "REGION_ID", "regions", "REGION_ID")],
    )
    rng = random.Random(11)
    regions = [
        {"REGION_ID": index + 1, "REGION_NAME": f"Region {index + 1}"}
        for index in range(6)
    ]
    sales = [
        {
            "SALE_ID": index + 1,
            "AMOUNT": rng.randint(100, 10_000),
            "CATEGORY": rng.choice(_CATEGORIES),
            "SOLD_AT": f"{rng.randint(2016, 2023):04d}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}",
            "REGION_ID": rng.randint(1, 6),
        }
        for index in range(rows)
    ]
    return Database.from_rows(schema, {"regions": regions, "sales": sales})


@pytest.fixture(scope="module")
def database():
    return _sales_database()


class TestEngineStatistics:
    def test_statistics_are_cached_and_invalidated_on_insert(self, database):
        db = _sales_database(rows=200)
        table = db.table("sales")
        first = table.statistics()
        assert table.statistics() is first
        assert first.row_count == 200
        table.insert({"SALE_ID": 201, "AMOUNT": 5, "CATEGORY": "Toys",
                      "SOLD_AT": "2020-01-01", "REGION_ID": 1})
        second = table.statistics()
        assert second is not first
        assert second.row_count == 201

    def test_fast_numeric_statistics_agree_with_exact_collectors(self, database):
        table = database.table("sales")
        fast = table.column_statistics("AMOUNT")
        exact = collect_column_statistics(table, "AMOUNT")
        assert fast.ndv == exact.ndv
        assert fast.null_count == exact.null_count
        assert fast.minimum == exact.minimum
        assert fast.maximum == exact.maximum
        assert [count for _, count in fast.most_common] == [
            count for _, count in exact.most_common
        ]

    def test_samples_are_cached_seeded_and_invalidated(self):
        db = _sales_database(rows=500)
        table = db.table("sales")
        sample = table.sample(kind=UNIFORM, fraction=0.1, seed=3)
        assert sample is table.sample(kind=UNIFORM, fraction=0.1, seed=3)
        assert sample.sampled_rows == 50
        assert list(sample.indices) == sorted(sample.indices)
        other_seed = table.sample(kind=UNIFORM, fraction=0.1, seed=4)
        assert list(other_seed.indices) != list(sample.indices)
        table.insert({"SALE_ID": 501, "AMOUNT": 5, "CATEGORY": "Toys",
                      "SOLD_AT": "2020-01-01", "REGION_ID": 1})
        assert table.sample(kind=UNIFORM, fraction=0.1, seed=3) is not sample

    def test_keyed_sample_covers_every_stratum(self):
        db = _sales_database(rows=2_000)
        sample = db.table("sales").sample(kind=KEYED, key="CATEGORY", fraction=0.05)
        assert set(sample.strata) == set(_CATEGORIES)
        for value, stratum in sample.strata.items():
            assert stratum.sampled >= 1, value
            assert stratum.sampled <= stratum.population


class TestCostModel:
    def test_explain_annotates_cardinality_and_cost(self, database):
        query = parse_dvq(
            "Visualize BAR SELECT CATEGORY , COUNT(*) FROM sales "
            "WHERE AMOUNT > 5000 GROUP BY CATEGORY"
        )
        plan = ColumnarBackend().plan(query, database)
        annotated = plan.explain(statistics=CostModel(database))
        assert "rows~" in annotated and "cost~" in annotated
        # without statistics the old format is unchanged
        assert "rows~" not in plan.explain()

    def test_range_selectivity_tracks_the_histogram(self, database):
        model = CostModel(database)
        query = parse_dvq(
            "Visualize BAR SELECT CATEGORY , COUNT(*) FROM sales "
            "WHERE AMOUNT > 5000 GROUP BY CATEGORY"
        )
        plan = ColumnarBackend().plan(query, database)
        filters = [n for n in iter_nodes(plan) if isinstance(n, Filter)]
        assert filters, plan.explain()
        selectivity = model.selectivity(filters[0].predicate)
        # AMOUNT is uniform on [100, 10000]: > 5000 keeps about half
        assert 0.3 <= selectivity <= 0.7

    def test_build_side_flips_when_the_left_input_is_smaller(self, database):
        query = parse_dvq(
            "Visualize BAR SELECT REGION_NAME , COUNT(*) FROM regions AS T2 "
            "JOIN sales AS T1 ON T2.REGION_ID = T1.REGION_ID "
            "GROUP BY REGION_NAME"
        )
        plan = ColumnarBackend().plan(query, database)
        joins = [n for n in iter_nodes(plan) if isinstance(n, Join)]
        assert joins and joins[0].build_side == "left"
        # rule-based planning leaves the canonical build side alone
        rules_plan = ColumnarBackend(cost_based=False).plan(query, database)
        rules_joins = [n for n in iter_nodes(rules_plan) if isinstance(n, Join)]
        assert rules_joins and rules_joins[0].build_side == "right"


class TestCostBasedInvariance:
    """Cost-based rewrites never change results (join order, build side)."""

    QUERY_COUNT = 120

    def test_fuzzed_queries_match_across_cost_based_and_rule_based(self, database):
        oracle = InterpreterBackend()
        cost_based = ColumnarBackend()
        rule_based = ColumnarBackend(cost_based=False)
        compared = 0
        for seed in range(self.QUERY_COUNT):
            query = WorkloadGenerator(seed=seed).generate(database)
            expected = oracle.execute(query, database)
            for backend in (cost_based, rule_based):
                got = backend.execute(query, database)
                assert got.columns == expected.columns, query
                assert got.rows == expected.rows, query
            compared += 1
        assert compared == self.QUERY_COUNT


class TestSamplingRewrite:
    DECLINED = [
        # MIN/MAX: a sample cannot bound extremes
        "Visualize BAR SELECT CATEGORY , MAX(AMOUNT) FROM sales GROUP BY CATEGORY",
        # DISTINCT: not estimable from a uniform sample
        "Visualize BAR SELECT CATEGORY , COUNT(DISTINCT AMOUNT) FROM sales "
        "GROUP BY CATEGORY",
        # top-k: membership near the cut is noise-sensitive
        "Visualize BAR SELECT CATEGORY , COUNT(*) FROM sales "
        "GROUP BY CATEGORY ORDER BY COUNT(*) DESC LIMIT 2",
        # flat projection: nothing to scale
        "Visualize BAR SELECT CATEGORY , AMOUNT FROM sales",
    ]

    def test_documented_declines_run_exact(self, database):
        exact = ColumnarBackend()
        approximate = ColumnarBackend(approximate=True)
        for text in self.DECLINED:
            query = parse_dvq(text)
            sampled = approximate.execute(query, database)
            assert sampled.approximation is None, text
            assert sampled.rows == exact.execute(query, database).rows, text

    def test_small_tables_always_run_exact(self):
        db = _sales_database(rows=500)
        query = parse_dvq(
            "Visualize BAR SELECT CATEGORY , COUNT(*) FROM sales GROUP BY CATEGORY"
        )
        result = ColumnarBackend(approximate=True).execute(query, db)
        assert result.approximation is None

    def test_rewrite_inserts_sample_above_the_fact_scan(self, database):
        query = parse_dvq(
            "Visualize BAR SELECT REGION_NAME , COUNT(*) FROM sales AS T1 "
            "JOIN regions AS T2 ON T1.REGION_ID = T2.REGION_ID "
            "GROUP BY REGION_NAME"
        )
        plan = ColumnarBackend().plan(query, database)
        rewrite = rewrite_with_sampling(plan, database)
        assert rewrite is not None
        samples = [n for n in iter_nodes(rewrite.plan) if isinstance(n, Sample)]
        assert len(samples) == 1
        assert samples[0].table == "sales"
        assert isinstance(samples[0].child, Scan)

    def test_keyed_group_by_counts_are_exact(self, database):
        query = parse_dvq(
            "Visualize BAR SELECT CATEGORY , COUNT(*) FROM sales GROUP BY CATEGORY"
        )
        exact = ColumnarBackend().execute(query, database)
        sampled = ColumnarBackend(approximate=True).execute(query, database)
        info = sampled.approximation
        assert info is not None and info.kind == KEYED and info.key == "CATEGORY"
        assert sampled.rows == exact.rows

    def test_approximate_columns_hide_the_support_output(self, database):
        query = parse_dvq(
            "Visualize BAR SELECT CATEGORY , AVG(AMOUNT) FROM sales "
            "GROUP BY CATEGORY"
        )
        exact = ColumnarBackend().execute(query, database)
        sampled = ColumnarBackend(approximate=True).execute(query, database)
        assert sampled.approximation is not None
        assert sampled.columns == exact.columns
        assert all(len(row) == len(exact.columns) for row in sampled.rows)


class TestErrorBoundProperty:
    """Across >= 50 fuzzer-generated aggregate DVQs, the observed relative
    error of every scaled output stays inside the reported CLT bound."""

    MINIMUM_APPLIED = 50
    MAX_SEEDS = 400

    def test_relative_error_bound_holds_on_fuzzed_aggregates(self, database):
        exact = ColumnarBackend()
        config = SamplingConfig(min_rows_per_group=50.0)
        approximate = ColumnarBackend(approximate=True, sampling_config=config)
        applied = 0
        for seed in range(self.MAX_SEEDS):
            query = WorkloadGenerator(seed=seed).generate(database)
            sampled = approximate.execute(query, database)
            info = sampled.approximation
            if info is None:
                continue  # the rewrite declined: exactness is covered above
            truth = exact.execute(query, database)
            assert sampled.columns == truth.columns, query
            truth_by_key = {row[0]: row for row in truth.rows}
            worst = 0.0
            for row in sampled.rows:
                exact_row = truth_by_key.get(row[0])
                assert exact_row is not None, (query, row[0])
                for value, reference in zip(row[1:], exact_row[1:]):
                    if isinstance(reference, (int, float)) and reference:
                        worst = max(worst, abs(value - reference) / abs(reference))
            assert worst <= max(info.max_relative_error, 1e-9), (
                f"observed {worst:.4f} > bound {info.max_relative_error:.4f}: "
                f"{query}"
            )
            applied += 1
            if applied >= self.MINIMUM_APPLIED:
                break
        assert applied >= self.MINIMUM_APPLIED, (
            f"only {applied} fuzzed queries were AQP-eligible"
        )
