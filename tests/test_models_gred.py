"""Integration tests for the baseline models, GRED and the experiment workbench.

These tests train on the small session-scoped corpus; they check behaviour and
the paper's qualitative robustness story rather than absolute accuracy values.
"""

import pytest

from repro.core import GRED, GREDConfig, build_ablation_variants
from repro.core.pipeline import GREDTrace
from repro.dvq.normalize import try_parse
from repro.evaluation import ModelEvaluator
from repro.models import RGVisNetModel, Seq2VisModel, TransformerModel
from repro.models.base import collect_training_columns, sketch_targets, signals_from_sketch


@pytest.fixture(scope="module")
def trained_models(small_dataset):
    models = {
        "Seq2Vis": Seq2VisModel(),
        "Transformer": TransformerModel(),
        "RGVisNet": RGVisNetModel(),
    }
    for model in models.values():
        model.fit(small_dataset.train, small_dataset.catalog)
    return models


@pytest.fixture(scope="module")
def prepared_gred(small_dataset):
    return GRED(GREDConfig(top_k=5)).fit(small_dataset.train, small_dataset.catalog)


class TestSketchUtilities:
    def test_sketch_targets_extracts_labels(self):
        sketch = sketch_targets(
            "Visualize BAR SELECT a , AVG(b) FROM t GROUP BY a ORDER BY a DESC"
        )
        assert sketch["chart_type"] == "BAR"
        assert sketch["aggregate"] == "AVG"
        assert sketch["order_direction"] == "DESC"
        assert sketch["has_group"] == "YES"

    def test_sketch_targets_none_for_garbage(self):
        assert sketch_targets("not a query") is None

    def test_signals_round_trip(self):
        sketch = sketch_targets("Visualize LINE SELECT d , SUM(v) FROM t BIN d BY YEAR")
        signals = signals_from_sketch(sketch)
        assert signals.chart_type.value == "LINE"
        assert signals.bin_unit.value == "YEAR"
        assert not signals.has_order

    def test_collect_training_columns(self, small_dataset):
        columns = collect_training_columns(small_dataset.train)
        assert columns
        assert all(column != "*" for column in columns)


class TestBaselines:
    def test_predictions_are_parseable(self, trained_models, small_dataset):
        example = small_dataset.test[0]
        database = small_dataset.catalog.get(example.db_id)
        for model in trained_models.values():
            assert try_parse(model.predict(example.nlq, database)) is not None

    def test_predict_before_fit_raises(self, small_dataset):
        example = small_dataset.test[0]
        database = small_dataset.catalog.get(example.db_id)
        with pytest.raises(RuntimeError):
            Seq2VisModel().predict(example.nlq, database)
        with pytest.raises(RuntimeError):
            TransformerModel().predict(example.nlq, database)
        with pytest.raises(RuntimeError):
            RGVisNetModel().predict(example.nlq, database)

    def test_baselines_reach_reasonable_accuracy_on_original_split(self, trained_models, small_dataset):
        evaluator = ModelEvaluator(limit=40)
        for name, model in trained_models.items():
            result = evaluator.evaluate(model, small_dataset.with_examples(small_dataset.test)).result
            assert result.overall_accuracy > 0.3, name

    def test_baselines_drop_on_dual_variant(self, trained_models, robustness_suite):
        evaluator = ModelEvaluator(limit=40)
        for name, model in trained_models.items():
            original = evaluator.evaluate(model, robustness_suite.original).result.overall_accuracy
            perturbed = evaluator.evaluate(model, robustness_suite.dual_variant).result.overall_accuracy
            assert perturbed < original, name

    def test_seq2vis_vocabulary_is_restricted_to_training_columns(self, trained_models, small_dataset):
        model = trained_models["Seq2Vis"]
        assert model._vocabulary_columns
        assert set(model._vocabulary_columns) == set(collect_training_columns(
            small_dataset.train[: model.max_train_examples]
        ))


class TestGRED:
    def test_trace_exposes_all_stages(self, prepared_gred, robustness_suite):
        example = robustness_suite.dual_variant.examples[0]
        database = robustness_suite.catalog.get(example.db_id)
        trace = prepared_gred.trace(example.nlq, database)
        assert isinstance(trace, GREDTrace)
        assert trace.dvq_gen and trace.dvq_rtn and trace.dvq_dbg
        assert trace.final == trace.dvq_dbg

    def test_debugger_output_references_target_schema(self, prepared_gred, robustness_suite):
        hits = 0
        checked = 0
        for example in robustness_suite.dual_variant.examples[:20]:
            database = robustness_suite.catalog.get(example.db_id)
            query = try_parse(prepared_gred.predict(example.nlq, database))
            if query is None:
                continue
            checked += 1
            schema_columns = {column.name.lower() for _, column in database.schema.all_columns()}
            referenced = {c.column.lower() for c in query.referenced_columns() if c.column != "*"}
            if referenced and referenced <= schema_columns:
                hits += 1
        assert checked and hits / checked > 0.5

    def test_gred_beats_baselines_on_dual_variant(self, prepared_gred, trained_models, robustness_suite):
        evaluator = ModelEvaluator(limit=40)
        gred_accuracy = evaluator.evaluate(prepared_gred, robustness_suite.dual_variant).result.overall_accuracy
        best_baseline = max(
            evaluator.evaluate(model, robustness_suite.dual_variant).result.overall_accuracy
            for model in trained_models.values()
        )
        assert gred_accuracy > best_baseline

    def test_predict_before_fit_raises(self, small_dataset):
        example = small_dataset.test[0]
        with pytest.raises(RuntimeError):
            GRED().predict(example.nlq, small_dataset.catalog.get(example.db_id))

    def test_ablation_variants_have_expected_switches(self):
        variants = build_ablation_variants(top_k=3)
        assert set(variants) == {"GRED", "GRED w/o RTN&DBG", "GRED w/o RTN", "GRED w/o DBG"}
        assert not variants["GRED w/o DBG"].config.use_debugger
        assert not variants["GRED w/o RTN"].config.use_retuner

    def test_without_debugger_keeps_generation_column_names(self, small_dataset, robustness_suite):
        no_debug = GRED(GREDConfig(top_k=5, use_debugger=False)).fit(
            small_dataset.train, small_dataset.catalog
        )
        example = robustness_suite.dual_variant.examples[0]
        database = robustness_suite.catalog.get(example.db_id)
        trace = no_debug.trace(example.nlq, database)
        assert trace.dvq_dbg == trace.dvq_rtn

    def test_llm_log_records_behaviours(self, prepared_gred, robustness_suite):
        example = robustness_suite.dual_variant.examples[1]
        database = robustness_suite.catalog.get(example.db_id)
        before = len(prepared_gred.llm.log)
        prepared_gred.predict(example.nlq, database)
        behaviours = {record.behaviour for record in prepared_gred.llm.log.records[before:]}
        assert {"generation", "retune", "debug"} <= behaviours
