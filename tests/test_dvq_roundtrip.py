"""Property-based round-trip tests for the DVQ layer.

For randomly generated queries (seeded through Hypothesis), serialization and
parsing are mutual inverses up to canonical form — ``parse(serialize(q))``
re-serialises to the same string — and text normalisation is idempotent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.database import DataGenerator
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq, serialize_dvq
from repro.dvq.generate import RandomDVQGenerator
from repro.dvq.components import extract_components
from repro.dvq.normalize import normalize_dvq_text


@pytest.fixture(scope="module")
def roundtrip_database():
    schema = build_schema(
        "roundtrip_db",
        [
            (
                "staff",
                [
                    ("STAFF_ID", ColumnType.NUMBER, "id"),
                    ("NAME", ColumnType.TEXT, "name"),
                    ("CITY", ColumnType.TEXT, "city"),
                    ("WAGE", ColumnType.NUMBER, "salary"),
                    ("JOINED", ColumnType.DATE, "date"),
                    ("REMOTE", ColumnType.BOOLEAN, "flag"),
                    ("TEAM_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "teams",
                [
                    ("TEAM_ID", ColumnType.NUMBER, "id"),
                    ("TEAM_NAME", ColumnType.TEXT, "name"),
                    ("BUDGET", ColumnType.NUMBER, "budget"),
                ],
            ),
        ],
        foreign_keys=[("staff", "TEAM_ID", "teams", "TEAM_ID")],
    )
    return DataGenerator(seed=9, rows_per_table=25).populate(schema)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_parse_serialize_roundtrip(seed, roundtrip_database):
    """serialize -> parse -> serialize is a fixed point for generated queries."""
    query = RandomDVQGenerator(seed=seed).generate(roundtrip_database)
    text = serialize_dvq(query)
    reparsed = parse_dvq(text)
    assert serialize_dvq(reparsed) == text


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_roundtrip_preserves_components(seed, roundtrip_database):
    """Parsing the serialized form loses no Vis/Axis/Data information."""
    query = RandomDVQGenerator(seed=seed).generate(roundtrip_database)
    reparsed = parse_dvq(serialize_dvq(query))
    assert extract_components(reparsed) == extract_components(query)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_normalize_is_idempotent(seed, roundtrip_database):
    """normalize(normalize(text)) == normalize(text) for generated queries."""
    text = serialize_dvq(RandomDVQGenerator(seed=seed).generate(roundtrip_database))
    normalized = normalize_dvq_text(text)
    assert normalize_dvq_text(normalized) == normalized


@pytest.mark.parametrize(
    "text",
    [
        "visualize bar select a , count(a) from t group by a",
        "Visualize   BAR SELECT a,COUNT(a) FROM t GROUP BY a",
        "this is not a DVQ at all",
        "",
    ],
)
def test_normalize_is_idempotent_on_arbitrary_text(text):
    normalized = normalize_dvq_text(text)
    assert normalize_dvq_text(normalized) == normalized


# -- fuzzer-generated queries (statistics-driven WorkloadGenerator) ----------


@pytest.fixture(scope="module")
def workload_database():
    from repro.workload import SchemaGraphConfig, build_workload_database

    return build_workload_database(
        SchemaGraphConfig(seed=31, table_count=6, topology="snowflake",
                          name="roundtrip_workload"),
        total_rows=1_200,
    )


def _workload_generator(seed):
    from repro.workload import WorkloadGenerator

    return WorkloadGenerator(seed=seed, max_joins=3, join_probability=0.7)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_workload_queries_roundtrip(seed, workload_database):
    """serialize -> parse is a fixed point for fuzzer-generated queries too."""
    query = _workload_generator(seed).generate(workload_database)
    text = serialize_dvq(query)
    assert serialize_dvq(parse_dvq(text)) == text


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_workload_normalize_is_idempotent(seed, workload_database):
    """serialize -> parse -> normalize idempotence on fuzzer-generated queries."""
    text = serialize_dvq(_workload_generator(seed).generate(workload_database))
    normalized = normalize_dvq_text(serialize_dvq(parse_dvq(text)))
    assert normalize_dvq_text(normalized) == normalized


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_non_portable_queries_still_roundtrip(seed, workload_database):
    """Corrupted (known-rejected) fuzz queries remain parse/serialize clean."""
    from repro.workload import WorkloadGenerator

    generator = WorkloadGenerator(
        seed=seed, portable_subset=False, corruption_probability=0.6
    )
    text = serialize_dvq(generator.generate(workload_database))
    reparsed = parse_dvq(text)
    assert serialize_dvq(reparsed) == text
    assert extract_components(reparsed) == extract_components(parse_dvq(text))


def test_generator_surface_covers_limit_bins_and_three_channels(workload_database):
    """The strategies genuinely exercise LIMIT, every bin unit family and
    3-channel charts — the surface the fuzzer leans on."""
    queries = [
        _workload_generator(seed).generate(workload_database) for seed in range(400)
    ]
    assert sum(1 for q in queries if q.limit is not None) >= 25
    assert sum(1 for q in queries if len(q.select) == 3) >= 10
    units = {q.bin.unit for q in queries if q.bin is not None}
    assert len(units) >= 3
    charts = {q.chart_type for q in queries}
    assert len(charts) >= 6


class TestLimitClause:
    """Parsing and serialization of the new LIMIT (top-k) clause."""

    def test_limit_roundtrip(self):
        text = "Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a ORDER BY COUNT(a) DESC LIMIT 5"
        query = parse_dvq(text)
        assert query.limit == 5
        assert serialize_dvq(query) == text

    def test_limit_before_bin_is_reordered_canonically(self):
        query = parse_dvq(
            "Visualize LINE SELECT d , COUNT(d) FROM t LIMIT 3 BIN d BY YEAR"
        )
        assert query.limit == 3
        assert query.bin is not None
        assert serialize_dvq(query).endswith("BIN d BY YEAR LIMIT 3")

    def test_limit_appears_in_components(self):
        with_limit = parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a LIMIT 2")
        without = parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a")
        assert extract_components(with_limit) != extract_components(without)
        assert extract_components(with_limit).data.limit == 2

    def test_negative_limit_rejected(self):
        from repro.dvq import DVQError

        with pytest.raises(DVQError):
            parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a LIMIT -1")

    def test_fractional_limit_rejected(self):
        from repro.dvq import DVQError

        with pytest.raises(DVQError):
            parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a LIMIT 2.5")
