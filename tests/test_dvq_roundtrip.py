"""Property-based round-trip tests for the DVQ layer.

For randomly generated queries (seeded through Hypothesis), serialization and
parsing are mutual inverses up to canonical form — ``parse(serialize(q))``
re-serialises to the same string — and text normalisation is idempotent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.database import DataGenerator
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq, serialize_dvq
from repro.dvq.generate import RandomDVQGenerator
from repro.dvq.components import extract_components
from repro.dvq.normalize import normalize_dvq_text


@pytest.fixture(scope="module")
def roundtrip_database():
    schema = build_schema(
        "roundtrip_db",
        [
            (
                "staff",
                [
                    ("STAFF_ID", ColumnType.NUMBER, "id"),
                    ("NAME", ColumnType.TEXT, "name"),
                    ("CITY", ColumnType.TEXT, "city"),
                    ("WAGE", ColumnType.NUMBER, "salary"),
                    ("JOINED", ColumnType.DATE, "date"),
                    ("REMOTE", ColumnType.BOOLEAN, "flag"),
                    ("TEAM_ID", ColumnType.NUMBER, "id"),
                ],
            ),
            (
                "teams",
                [
                    ("TEAM_ID", ColumnType.NUMBER, "id"),
                    ("TEAM_NAME", ColumnType.TEXT, "name"),
                    ("BUDGET", ColumnType.NUMBER, "budget"),
                ],
            ),
        ],
        foreign_keys=[("staff", "TEAM_ID", "teams", "TEAM_ID")],
    )
    return DataGenerator(seed=9, rows_per_table=25).populate(schema)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_parse_serialize_roundtrip(seed, roundtrip_database):
    """serialize -> parse -> serialize is a fixed point for generated queries."""
    query = RandomDVQGenerator(seed=seed).generate(roundtrip_database)
    text = serialize_dvq(query)
    reparsed = parse_dvq(text)
    assert serialize_dvq(reparsed) == text


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_roundtrip_preserves_components(seed, roundtrip_database):
    """Parsing the serialized form loses no Vis/Axis/Data information."""
    query = RandomDVQGenerator(seed=seed).generate(roundtrip_database)
    reparsed = parse_dvq(serialize_dvq(query))
    assert extract_components(reparsed) == extract_components(query)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_normalize_is_idempotent(seed, roundtrip_database):
    """normalize(normalize(text)) == normalize(text) for generated queries."""
    text = serialize_dvq(RandomDVQGenerator(seed=seed).generate(roundtrip_database))
    normalized = normalize_dvq_text(text)
    assert normalize_dvq_text(normalized) == normalized


@pytest.mark.parametrize(
    "text",
    [
        "visualize bar select a , count(a) from t group by a",
        "Visualize   BAR SELECT a,COUNT(a) FROM t GROUP BY a",
        "this is not a DVQ at all",
        "",
    ],
)
def test_normalize_is_idempotent_on_arbitrary_text(text):
    normalized = normalize_dvq_text(text)
    assert normalize_dvq_text(normalized) == normalized


class TestLimitClause:
    """Parsing and serialization of the new LIMIT (top-k) clause."""

    def test_limit_roundtrip(self):
        text = "Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a ORDER BY COUNT(a) DESC LIMIT 5"
        query = parse_dvq(text)
        assert query.limit == 5
        assert serialize_dvq(query) == text

    def test_limit_before_bin_is_reordered_canonically(self):
        query = parse_dvq(
            "Visualize LINE SELECT d , COUNT(d) FROM t LIMIT 3 BIN d BY YEAR"
        )
        assert query.limit == 3
        assert query.bin is not None
        assert serialize_dvq(query).endswith("BIN d BY YEAR LIMIT 3")

    def test_limit_appears_in_components(self):
        with_limit = parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a LIMIT 2")
        without = parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a")
        assert extract_components(with_limit) != extract_components(without)
        assert extract_components(with_limit).data.limit == 2

    def test_negative_limit_rejected(self):
        from repro.dvq import DVQError

        with pytest.raises(DVQError):
            parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a LIMIT -1")

    def test_fractional_limit_rejected(self):
        from repro.dvq import DVQError

        with pytest.raises(DVQError):
            parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a LIMIT 2.5")
