"""Fuzz-harness and minimizer tests, including injected-bug regressions.

The minimizer regression tests monkeypatch
``repro.executor.columnar.evaluate_condition`` *and*
``evaluate_condition_vector`` — the columnar engine's module-level import
bindings for the scalar and vectorized predicate paths — so only the
columnar backends misbehave while the interpreter oracle stays correct.
Every injected mismatch must shrink to a <= 3-clause reproducer,
deterministically per seed.
"""

from __future__ import annotations

import math
import weakref

import pytest

import repro.executor.columnar as columnar_module
from repro.dvq import parse_dvq, serialize_dvq
from repro.dvq.nodes import Condition
from repro.executor import ColumnarBackend, InterpreterBackend
from repro.workload import (
    DifferentialFuzzer,
    MismatchOracle,
    SchemaGraphConfig,
    WorkloadGenerator,
    build_workload_database,
    clause_count,
    default_engine_matrix,
    execution_mismatch,
    fuzz_database,
    minimize_query,
    rows_agree,
)


@pytest.fixture(scope="module")
def database():
    return build_workload_database(
        SchemaGraphConfig(seed=7, table_count=8, topology="star", name="fuzz_db"),
        total_rows=3_000,
    )


@pytest.fixture(scope="module")
def null_key_database():
    """A workload database where a quarter of all foreign-key values are NULL."""
    return build_workload_database(
        SchemaGraphConfig(seed=13, table_count=6, topology="snowflake",
                          name="fuzz_null_db"),
        total_rows=2_000,
        fk_null_fraction=0.25,
    )


@pytest.fixture(scope="module")
def nan_sort_database():
    """A workload database where 15% of non-key NUMBER values are NaN."""
    return build_workload_database(
        SchemaGraphConfig(seed=29, table_count=6, topology="star",
                          name="fuzz_nan_db"),
        total_rows=2_000,
        nan_fraction=0.15,
    )


@pytest.fixture
def broken_less_than(monkeypatch):
    """Make the columnar engines treat ``<`` as ``<=`` (interpreter unaffected)."""
    real = columnar_module.evaluate_condition
    real_vector = columnar_module.evaluate_condition_vector

    def rewrite(condition):
        if condition.operator != "<":
            return condition
        return Condition(
            column=condition.column,
            operator="<=",
            value=condition.value,
            value2=condition.value2,
            negated=condition.negated,
        )

    def buggy(condition, value, *args, **kwargs):
        return real(rewrite(condition), value, *args, **kwargs)

    def buggy_vector(condition, column, *args, **kwargs):
        return real_vector(rewrite(condition), column, *args, **kwargs)

    monkeypatch.setattr(columnar_module, "evaluate_condition", buggy)
    monkeypatch.setattr(columnar_module, "evaluate_condition_vector", buggy_vector)


class TestCleanSweep:
    def test_portable_sweep_has_zero_mismatches(self, database):
        report = fuzz_database(database, count=120, base_seed=0, max_workers=2)
        assert report.ok, report.summary()
        assert report.total == 120
        assert report.category_counts == {"ok": 120}
        assert report.comparisons == 120 * len(report.engines)

    def test_non_portable_sweep_matches_failure_categories(self, database):
        report = fuzz_database(
            database, count=120, base_seed=500, portable_subset=False, max_workers=2
        )
        assert report.ok, report.summary()
        # the corrupted fraction produced non-ok reference outcomes, and every
        # engine classified them identically (otherwise: mismatches)
        broken = {
            category: count
            for category, count in report.category_counts.items()
            if category != "ok"
        }
        assert broken
        assert set(broken) <= {"missing_table", "missing_column"}

    def test_failing_index_is_reproducible_from_its_seed(self, database):
        fuzzer = DifferentialFuzzer(database, base_seed=42)
        first = serialize_dvq(fuzzer.query_for_seed(42 + 7))
        again = serialize_dvq(fuzzer.query_for_seed(42 + 7))
        assert first == again
        fresh = WorkloadGenerator(seed=42 + 7).generate(database)
        assert serialize_dvq(fresh) == first

    def test_summary_mentions_scale(self, database):
        report = fuzz_database(database, count=10, max_workers=1)
        assert "10 queries" in report.summary()
        assert "mismatches: 0" in report.summary()


class TestNullKeyJoins:
    """SQL NULL-join semantics, proved differentially over null-heavy keys."""

    def test_fk_null_fraction_actually_nulls_join_keys(self, null_key_database):
        fk = null_key_database.schema.foreign_keys[0]
        table = null_key_database.table(fk.table)
        column = table.canonical_column(fk.column)
        nulls = sum(1 for row in table.rows if row[column] is None)
        assert nulls > 0
        assert nulls < len(table.rows)

    def test_null_heavy_sweep_has_zero_mismatches(self, null_key_database):
        """Every engine agrees a NULL key never matches — even another NULL.

        This is the differential proof for the NULL-join fix: before it, the
        interpreter's hash join matched ``None == None`` pairs while SQLite's
        ``NULL = NULL`` did not, so any joined query over these keys
        mismatched.
        """
        report = fuzz_database(
            null_key_database, count=100, base_seed=0, max_workers=2
        )
        assert report.ok, report.summary()
        assert report.category_counts == {"ok": 100}

    def test_engine_matrix_covers_vectorized_and_scalar_columnar(self):
        from repro.workload.fuzz import default_engine_matrix

        matrix = default_engine_matrix()
        assert matrix["columnar"].vectorize
        assert not matrix["columnar-python"].vectorize
        assert matrix["columnar-cbo"].cost_based
        assert not matrix["columnar"].cost_based
        parallel = matrix["columnar-parallel"]
        assert parallel._engine.max_workers == 4
        # small morsels so the partitioned kernels engage at fuzz scale
        assert parallel._engine.morsel_size == 512
        assert set(matrix) == {
            "sqlite", "columnar-cbo", "columnar", "columnar-noopt",
            "columnar-python", "columnar-parallel",
        }


class TestInjectedBugRegression:
    def test_fuzzer_finds_and_minimizes_the_bug(self, database, broken_less_than):
        report = fuzz_database(database, count=150, base_seed=0, max_workers=1)
        assert not report.ok
        assert report.mismatches
        for mismatch in report.mismatches:
            assert mismatch.engine in (
                "columnar-cbo", "columnar", "columnar-noopt", "columnar-python",
                "columnar-parallel",
            )
            assert mismatch.kind == "rows"
            minimized = parse_dvq(mismatch.minimized_text)
            assert clause_count(minimized) <= 3, mismatch.minimized_text
            # the shrunken reproducer still contains the triggering operator
            assert minimized.where is not None
            assert any(
                condition.operator == "<" for condition in minimized.where.conditions
            ), mismatch.minimized_text

    def test_minimization_is_deterministic_per_seed(self, database, broken_less_than):
        first = fuzz_database(database, count=80, base_seed=0, max_workers=1)
        second = fuzz_database(database, count=80, base_seed=0, max_workers=2)
        assert [m.seed for m in first.mismatches] == [m.seed for m in second.mismatches]
        assert [m.minimized_text for m in first.mismatches] == [
            m.minimized_text for m in second.mismatches
        ]

    def test_repro_snippet_is_paste_ready(self, database, broken_less_than):
        report = fuzz_database(database, count=80, base_seed=0, max_workers=1)
        mismatch = report.mismatches[0]
        snippet = mismatch.repro_snippet()
        assert f"generator seed {mismatch.seed}" in snippet
        assert mismatch.minimized_text in snippet
        # the embedded parse_dvq(...) literal parses back to the reproducer
        assert serialize_dvq(parse_dvq(mismatch.minimized_text)) == mismatch.minimized_text

    def test_interpreter_is_unaffected_by_the_columnar_patch(
        self, database, broken_less_than
    ):
        interpreter = InterpreterBackend()
        for query in WorkloadGenerator(seed=123).generate_many(database, 20):
            assert interpreter.explain_failure(query, database).ok


class TestMinimizeQuery:
    def test_oracle_must_accept_the_original(self, database):
        interpreter = InterpreterBackend()
        query = WorkloadGenerator(seed=1).generate(database)
        oracle = MismatchOracle(database, interpreter, InterpreterBackend())
        with pytest.raises(ValueError):
            minimize_query(query, oracle, database)

    def test_minimizer_reaches_a_fixpoint(self, database, broken_less_than):
        # find a mismatching query, then check minimize is idempotent
        engine = ColumnarBackend(optimize=True)
        interpreter = InterpreterBackend()
        generator = WorkloadGenerator(seed=0)
        target = None
        for query in generator.generate_many(database, 200):
            if execution_mismatch(query, database, interpreter, engine) is not None:
                target = query
                break
        assert target is not None, "injected bug produced no mismatch in 200 queries"
        oracle = MismatchOracle(database, interpreter, engine)
        minimized = minimize_query(target, oracle, database)
        again = minimize_query(minimized, oracle, database)
        assert serialize_dvq(again) == serialize_dvq(minimized)
        assert clause_count(minimized) <= clause_count(target)

    def test_clause_count_metric(self):
        flat = parse_dvq("Visualize BAR SELECT a , b FROM t")
        assert clause_count(flat) == 0
        rich = parse_dvq(
            "Visualize BAR SELECT a , COUNT(a) FROM t JOIN s ON t.x = s.x "
            "WHERE a = 1 AND b = 2 GROUP BY a ORDER BY COUNT(a) DESC LIMIT 3"
        )
        assert clause_count(rich) == 5  # join + 2 conditions + order + limit


def _sort_heavy_factory(cache):
    """ORDER BY / LIMIT-weighted generators sharing one statistics pass."""
    return lambda seed: WorkloadGenerator(
        seed=seed,
        order_probability=0.9,
        limit_probability=0.7,
        stats_cache=cache,
    )


class TestSortHeavySweeps:
    """ORDER BY / LIMIT-weighted sweeps over null- and NaN-heavy sort columns.

    The default engine matrix includes ``columnar-parallel`` with
    ``cost_based=False`` and 512-row morsels, so the partitioned sort and
    parallel top-k kernels actually engage at fuzz-database scale — the spy
    test proves it rather than assuming it.
    """

    def test_sort_heavy_null_key_sweep_is_mismatch_free(self, null_key_database):
        fuzzer = DifferentialFuzzer(
            null_key_database,
            generator_factory=_sort_heavy_factory(weakref.WeakKeyDictionary()),
            base_seed=0,
            max_workers=2,
        )
        report = fuzzer.run(100)
        assert report.ok, report.summary()
        assert set(report.engines) == set(default_engine_matrix())
        assert report.category_counts == {"ok": 100}

    def test_nan_heavy_sweep_is_mismatch_free_without_sqlite(self, nan_sort_database):
        # sqlite3 binds float('nan') parameters as NULL on INSERT, so a
        # NaN-bearing database is outside SQLite's differential scope by
        # construction; every in-process engine must still reproduce the
        # canonical NUMBER < NaN < TEXT < NULL rank bit-for-bit.
        engines = {
            name: engine
            for name, engine in default_engine_matrix().items()
            if name != "sqlite"
        }
        fuzzer = DifferentialFuzzer(
            nan_sort_database,
            engines=engines,
            generator_factory=_sort_heavy_factory(weakref.WeakKeyDictionary()),
            base_seed=300,
            max_workers=2,
        )
        report = fuzzer.run(100)
        assert report.ok, report.summary()
        assert "sqlite" not in report.engines

    def test_sort_heavy_sweep_engages_the_sort_kernels(self, database, monkeypatch):
        calls = {"topk": 0, "psort": 0, "ptopk": 0}
        real_topk = columnar_module.topk_order
        real_psort = columnar_module.partitioned_sort
        real_ptopk = columnar_module.parallel_topk

        def spy_topk(*args, **kwargs):
            calls["topk"] += 1
            return real_topk(*args, **kwargs)

        def spy_psort(*args, **kwargs):
            calls["psort"] += 1
            return real_psort(*args, **kwargs)

        def spy_ptopk(*args, **kwargs):
            calls["ptopk"] += 1
            return real_ptopk(*args, **kwargs)

        monkeypatch.setattr(columnar_module, "topk_order", spy_topk)
        monkeypatch.setattr(columnar_module, "partitioned_sort", spy_psort)
        monkeypatch.setattr(columnar_module, "parallel_topk", spy_ptopk)
        fuzzer = DifferentialFuzzer(
            database,
            generator_factory=_sort_heavy_factory(weakref.WeakKeyDictionary()),
            base_seed=0,
            max_workers=1,
        )
        report = fuzzer.run(100)
        assert report.ok, report.summary()
        assert calls["topk"] > 0, "vectorized top-k selection never ran"
        assert calls["ptopk"] > 0, "parallel top-k never engaged"

    def test_nan_fraction_actually_injects_nan_sort_values(self, nan_sort_database):
        nans = 0
        for table_schema in nan_sort_database.schema.tables:
            for row in nan_sort_database.table(table_schema.name).rows:
                nans += sum(
                    1
                    for value in row.values()
                    if isinstance(value, float) and math.isnan(value)
                )
        assert nans > 0

    def test_rows_agree_is_nan_aware_but_not_nan_blind(self):
        nan = float("nan")
        assert rows_agree([(1.0, nan)], [(1.0, nan)])
        assert not rows_agree([(1.0, nan)], [(1.0, None)])
        assert not rows_agree([(nan,)], [(2.0,)])
        assert not rows_agree([(nan,)], [])
        assert rows_agree([], [])
