"""Tests for the Vega-Lite compiler, validator and chart renderer."""

import json

import pytest

from repro.dvq import parse_dvq
from repro.vegalite import ChartRenderer, RenderError, compile_to_vegalite, validate_spec
from repro.vegalite.spec import Encoding, VegaLiteSpec


class TestCompiler:
    def test_bar_chart_mark_and_channels(self, hr_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , AVG(SALARY) FROM employees GROUP BY LAST_NAME"
        )
        spec = compile_to_vegalite(query, hr_database)
        assert spec.mark == "bar"
        assert spec.encoding["y"].aggregate == "mean"
        assert spec.encoding["x"].field == "LAST_NAME"

    def test_pie_chart_uses_theta(self, hr_database):
        query = parse_dvq(
            "Visualize PIE SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME"
        )
        spec = compile_to_vegalite(query, hr_database)
        assert spec.mark == "arc"
        assert "theta" in spec.encoding

    def test_line_chart_with_year_bin_sets_timeunit(self, hr_database):
        query = parse_dvq(
            "Visualize LINE SELECT HIRE_DATE , AVG(SALARY) FROM employees BIN HIRE_DATE BY YEAR"
        )
        spec = compile_to_vegalite(query, hr_database)
        assert spec.encoding["x"].time_unit == "year"

    def test_order_by_sets_sort(self, hr_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , AVG(SALARY) FROM employees GROUP BY LAST_NAME "
            "ORDER BY LAST_NAME DESC"
        )
        spec = compile_to_vegalite(query, hr_database)
        assert spec.encoding["x"].sort == "descending"

    def test_field_types_from_schema(self, hr_database):
        query = parse_dvq("Visualize SCATTER SELECT SALARY , DEPARTMENT_ID FROM employees")
        spec = compile_to_vegalite(query, hr_database)
        assert spec.encoding["x"].type == "quantitative"

    def test_spec_round_trips_through_json(self, hr_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME"
        )
        spec = compile_to_vegalite(query, hr_database)
        payload = json.loads(spec.to_json())
        rebuilt = VegaLiteSpec.from_dict(payload)
        assert rebuilt.mark == spec.mark
        assert set(rebuilt.encoding) == set(spec.encoding)


class TestValidation:
    def test_valid_spec_passes(self):
        spec = VegaLiteSpec(mark="bar", encoding={"x": Encoding("a"), "y": Encoding("b", type="quantitative")})
        assert validate_spec(spec) == []

    def test_unknown_mark_rejected(self):
        spec = VegaLiteSpec(mark="histogram", encoding={"x": Encoding("a"), "y": Encoding("b")})
        problems = validate_spec(spec)
        assert any("histogram" in problem for problem in problems)

    def test_empty_field_rejected(self):
        spec = VegaLiteSpec(mark="bar", encoding={"x": Encoding(""), "y": Encoding("b")})
        assert validate_spec(spec)

    def test_natural_language_field_rejected(self):
        spec = VegaLiteSpec(mark="bar", encoding={"x": Encoding("date of hire"), "y": Encoding("wage")})
        assert validate_spec(spec)

    def test_missing_encoding_rejected(self):
        assert validate_spec(VegaLiteSpec(mark="bar", encoding={}))


class TestRenderer:
    def test_render_attaches_data(self, hr_database):
        chart = ChartRenderer().render_text(
            "Visualize BAR SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME",
            hr_database,
        )
        assert len(chart.data) > 0
        assert "LAST_NAME" in chart.data[0]

    def test_render_fails_on_unknown_column(self, hr_database):
        with pytest.raises(RenderError):
            ChartRenderer().render_text(
                "Visualize BAR SELECT wage , COUNT(wage) FROM employees GROUP BY wage",
                hr_database,
            )

    def test_render_fails_on_unparseable_query(self, hr_database):
        with pytest.raises(RenderError):
            ChartRenderer().render_text("this is not a DVQ at all", hr_database)

    def test_try_render_returns_none_on_failure(self, hr_database):
        renderer = ChartRenderer()
        assert renderer.try_render_text("garbage", hr_database) is None

    def test_ascii_render_produces_bars(self, hr_database):
        chart = ChartRenderer().render_text(
            "Visualize BAR SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME",
            hr_database,
        )
        assert "#" in chart.ascii_render()

    def test_summary_mentions_chart_type(self, hr_database):
        chart = ChartRenderer().render_text(
            "Visualize PIE SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME",
            hr_database,
        )
        assert "PIE" in chart.summary()
