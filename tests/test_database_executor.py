"""Tests for the relational substrate and the DVQ executor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database import Catalog, DataGenerator, Table
from repro.database.schema import Column, ColumnType, TableSchema, build_schema
from repro.dvq import parse_dvq
from repro.dvq.nodes import BinUnit, ColumnRef, Condition
from repro.executor import DVQExecutor, ExecutionError, ExecutionResult
from repro.executor.binning import bin_value
from repro.executor.functions import apply_aggregate
from repro.executor.predicates import evaluate_condition


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema(
                name="t",
                columns=(
                    Column("a", ColumnType.TEXT),
                    Column("A", ColumnType.NUMBER),
                ),
            )

    def test_column_lookup_is_case_insensitive(self, hr_database):
        table = hr_database.schema.table("employees")
        assert table.column("salary").name == "SALARY"

    def test_describe_lists_tables_and_foreign_keys(self, hr_database):
        description = hr_database.schema.describe()
        assert "# Table employees" in description
        assert "Foreign_keys" in description

    def test_renamed_schema_rewrites_foreign_keys(self, hr_database):
        renamed = hr_database.schema.renamed(
            new_name="hr_renamed",
            column_renames={("employees", "DEPARTMENT_ID"): "Dept_ID"},
        )
        fk = renamed.foreign_keys[0]
        assert fk.column == "Dept_ID"

    def test_join_graph_connects_tables(self, hr_database):
        graph = hr_database.schema.join_graph()
        assert graph.has_edge("employees", "departments")


class TestTableAndCatalog:
    def test_insert_normalises_keys(self):
        schema = TableSchema("t", (Column("A", ColumnType.NUMBER), Column("B", ColumnType.TEXT)))
        table = Table(schema)
        table.insert({"a": 1, "b": "x"})
        assert table.rows[0]["A"] == 1

    def test_insert_unknown_column_raises(self):
        schema = TableSchema("t", (Column("A", ColumnType.NUMBER),))
        with pytest.raises(KeyError):
            Table(schema).insert({"nope": 1})

    def test_distinct_values_skip_nones(self):
        schema = TableSchema("t", (Column("A", ColumnType.NUMBER),))
        table = Table(schema, [{"A": 1}, {"A": None}, {"A": 1}, {"A": 2}])
        assert table.distinct_values("A") == [1, 2]

    def test_catalog_rejects_duplicates(self, hr_database):
        catalog = Catalog([hr_database])
        with pytest.raises(KeyError):
            catalog.add(hr_database)

    def test_catalog_statistics(self, hr_database):
        stats = Catalog([hr_database]).statistics()
        assert stats["databases"] == 1
        assert stats["tables"] == 2
        assert stats["avg_columns_per_table"] > 0


class TestColumnStoreThreadSafety:
    """The lazy column/typed stores build exactly once under concurrency.

    Regression for a race where two threads could observe a half-built
    column store (one invalidating, one building) — every concurrent reader
    must get the *same* fully built store object with values matching the
    row data.
    """

    def test_concurrent_store_builds_are_consistent(self, hr_database):
        from repro.runtime.runner import BatchRunner

        table = hr_database.table("employees")
        column = table.canonical_column("SALARY")
        expected = [row[column] for row in table.rows]
        runner = BatchRunner(max_workers=8)
        for _ in range(25):
            table.refresh_columns()
            stores = runner.map(
                range(8), lambda _: (table.column_store(), table.typed_store())
            )
            first_lists, first_typed = stores[0]
            for lists, typed in stores[1:]:
                # one build per invalidation: everyone sees the same object
                assert lists is first_lists
                assert typed is first_typed
            assert first_lists[column] == expected
            assert list(first_typed[column].objects) == expected
            assert len(first_typed[column].mask) == len(expected)

    def test_insert_invalidates_both_stores(self):
        schema = TableSchema(
            "t", (Column("A", ColumnType.NUMBER), Column("B", ColumnType.TEXT))
        )
        table = Table(schema)
        table.insert({"a": 1, "b": "x"})
        assert table.column_store()["A"] == [1]
        assert list(table.typed_store()["A"].objects) == [1]
        table.insert({"a": 2, "b": None})
        assert table.column_store()["A"] == [1, 2]
        typed = table.typed_store()["B"]
        assert list(typed.objects) == ["x", None]
        assert list(typed.mask) == [False, True]


class TestDataGenerator:
    def test_generation_is_deterministic(self):
        schema = build_schema(
            "gen_test",
            [("t", [("ID", ColumnType.NUMBER, "id"), ("City", ColumnType.TEXT, "city")])],
        )
        first = DataGenerator(seed=5).populate(schema)
        second = DataGenerator(seed=5).populate(schema)
        assert first.table("t").rows == second.table("t").rows

    def test_foreign_keys_reference_existing_rows(self, hr_database):
        departments = set(hr_database.table("departments").column_values("DEPARTMENT_ID"))
        employees = hr_database.table("employees").column_values("DEPARTMENT_ID")
        assert all(value in departments for value in employees)

    def test_primary_keys_are_sequential(self, hr_database):
        ids = hr_database.table("employees").column_values("EMPLOYEE_ID")
        assert ids == list(range(1, len(ids) + 1))


class TestAggregates:
    @pytest.mark.parametrize(
        "name,values,expected",
        [
            ("COUNT", [1, None, 2], 2),
            ("SUM", [1, 2, 3], 6),
            ("AVG", [2, 4], 3),
            ("MIN", [5, 1, 3], 1),
            ("MAX", [5, 1, 3], 5),
        ],
    )
    def test_aggregates(self, name, values, expected):
        assert apply_aggregate(name, values) == expected

    def test_empty_sum_is_none(self):
        assert apply_aggregate("SUM", []) is None

    def test_count_distinct(self):
        assert apply_aggregate("COUNT", [1, 1, 2], distinct=True) == 2


class TestBinning:
    def test_year_from_date(self):
        assert bin_value("2015-06-01", BinUnit.YEAR) == 2015

    def test_month_from_date(self):
        assert bin_value("2015-06-01", BinUnit.MONTH) == 6

    def test_weekday_from_date(self):
        assert bin_value("2024-01-01", BinUnit.WEEKDAY) == "Monday"

    def test_interval_bins_numbers(self):
        assert bin_value(250, BinUnit.INTERVAL, interval=100) == "[200, 300)"

    def test_none_stays_none(self):
        assert bin_value(None, BinUnit.YEAR) is None

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1995, max_value=2030), st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=28))
    def test_weekday_is_always_a_day_name(self, year, month, day):
        value = bin_value(f"{year:04d}-{month:02d}-{day:02d}", BinUnit.WEEKDAY)
        assert value in {"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}


class TestExecutor:
    def test_group_by_counts(self, hr_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME"
        )
        result = DVQExecutor().execute(query, hr_database)
        total = sum(row[1] for row in result.rows)
        assert total == len(hr_database.table("employees"))

    def test_where_filters_rows(self, hr_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , SALARY FROM employees WHERE SALARY > 10000"
        )
        result = DVQExecutor().execute(query, hr_database)
        assert all(row[1] > 10000 for row in result.rows)

    def test_order_by_desc(self, hr_database):
        query = parse_dvq(
            "Visualize BAR SELECT LAST_NAME , AVG(SALARY) FROM employees GROUP BY LAST_NAME "
            "ORDER BY AVG(SALARY) DESC"
        )
        result = DVQExecutor().execute(query, hr_database)
        values = [row[1] for row in result.rows]
        assert values == sorted(values, reverse=True)

    def test_bin_by_year_groups_dates(self, hr_database):
        query = parse_dvq(
            "Visualize LINE SELECT HIRE_DATE , AVG(SALARY) FROM employees BIN HIRE_DATE BY YEAR"
        )
        result = DVQExecutor().execute(query, hr_database)
        assert all(isinstance(row[0], int) for row in result.rows)

    def test_join_execution(self, hr_database):
        query = parse_dvq(
            "Visualize BAR SELECT DEPARTMENT_NAME , AVG(SALARY) FROM employees "
            "JOIN departments ON employees.DEPARTMENT_ID = departments.DEPARTMENT_ID "
            "GROUP BY DEPARTMENT_NAME"
        )
        result = DVQExecutor().execute(query, hr_database)
        assert len(result) >= 1

    def test_missing_column_raises(self, hr_database):
        query = parse_dvq("Visualize BAR SELECT wage , COUNT(wage) FROM employees GROUP BY wage")
        with pytest.raises(ExecutionError):
            DVQExecutor().execute(query, hr_database)

    def test_missing_table_raises(self, hr_database):
        query = parse_dvq("Visualize BAR SELECT a , COUNT(a) FROM missing GROUP BY a")
        with pytest.raises(ExecutionError):
            DVQExecutor().execute(query, hr_database)

    def test_can_execute_flag(self, hr_database):
        executor = DVQExecutor()
        good = parse_dvq("Visualize BAR SELECT LAST_NAME , COUNT(LAST_NAME) FROM employees GROUP BY LAST_NAME")
        bad = parse_dvq("Visualize BAR SELECT wage , COUNT(wage) FROM employees GROUP BY wage")
        assert executor.can_execute(good, hr_database)
        assert not executor.can_execute(bad, hr_database)

    def test_gold_corpus_queries_all_execute(self, small_dataset):
        executor = DVQExecutor()
        for example in small_dataset.examples[:150]:
            query = parse_dvq(example.dvq)
            database = small_dataset.catalog.get(example.db_id)
            executor.execute(query, database)

    def test_limit_caps_rows_deterministically(self, hr_database):
        full = DVQExecutor().execute(
            parse_dvq(
                "Visualize BAR SELECT LAST_NAME , COUNT(*) FROM employees "
                "GROUP BY LAST_NAME ORDER BY COUNT(*) DESC"
            ),
            hr_database,
        )
        limited = DVQExecutor().execute(
            parse_dvq(
                "Visualize BAR SELECT LAST_NAME , COUNT(*) FROM employees "
                "GROUP BY LAST_NAME ORDER BY COUNT(*) DESC LIMIT 3"
            ),
            hr_database,
        )
        assert len(limited) == 3
        # top-k rows carry the k highest counts of the full result
        top_counts = sorted((row[1] for row in full.rows), reverse=True)[:3]
        assert sorted((row[1] for row in limited.rows), reverse=True) == top_counts


def _null_db():
    """A table exercising NULLs in every predicate-relevant position."""
    schema = build_schema(
        "nullable",
        [
            (
                "readings",
                [
                    ("READING_ID", ColumnType.NUMBER, "id"),
                    ("SENSOR", ColumnType.TEXT, "name"),
                    ("VALUE", ColumnType.NUMBER, "count"),
                ],
            )
        ],
    )
    from repro.database import Database

    return Database.from_rows(
        schema,
        {
            "readings": [
                {"READING_ID": 1, "SENSOR": "Alpha", "VALUE": 10},
                {"READING_ID": 2, "SENSOR": None, "VALUE": 20},
                {"READING_ID": 3, "SENSOR": "Beta", "VALUE": None},
                {"READING_ID": 4, "SENSOR": "alpha", "VALUE": 30},
            ]
        },
    )


class TestNullPredicates:
    """NULL semantics the differential harness relies on (satellite checks)."""

    def test_comparisons_with_null_value_are_false(self):
        condition = Condition(column=ColumnRef("VALUE"), operator=">", value=5)
        assert not evaluate_condition(condition, None)
        condition = Condition(column=ColumnRef("VALUE"), operator="=", value=5)
        assert not evaluate_condition(condition, None)

    def test_null_literal_never_matches_equality(self):
        condition = Condition(column=ColumnRef("VALUE"), operator="=", value=None)
        assert not evaluate_condition(condition, 5)
        assert not evaluate_condition(condition, None)

    def test_null_sentinel_string_matches_null_values(self):
        condition = Condition(column=ColumnRef("SENSOR"), operator="=", value="null")
        assert evaluate_condition(condition, None)
        assert not evaluate_condition(condition, "Alpha")
        negated = Condition(column=ColumnRef("SENSOR"), operator="!=", value="null")
        assert not evaluate_condition(negated, None)
        assert evaluate_condition(negated, "Alpha")

    def test_is_null_and_is_not_null(self):
        executor = DVQExecutor()
        result = executor.execute(
            parse_dvq("Visualize BAR SELECT READING_ID , VALUE FROM readings WHERE VALUE IS NULL"),
            _null_db(),
        )
        assert result.x_values() == [3]
        result = executor.execute(
            parse_dvq("Visualize BAR SELECT READING_ID , VALUE FROM readings WHERE SENSOR IS NOT NULL"),
            _null_db(),
        )
        assert result.x_values() == [1, 3, 4]

    def test_not_in_keeps_null_rows(self):
        result = DVQExecutor().execute(
            parse_dvq(
                "Visualize BAR SELECT READING_ID , SENSOR FROM readings "
                "WHERE SENSOR NOT IN ( 'Beta' )"
            ),
            _null_db(),
        )
        # row 2 (NULL sensor) passes, row 3 ('Beta') is excluded
        assert result.x_values() == [1, 2, 4]

    def test_not_like_keeps_null_rows(self):
        result = DVQExecutor().execute(
            parse_dvq(
                "Visualize BAR SELECT READING_ID , SENSOR FROM readings "
                "WHERE SENSOR NOT LIKE 'Al%'"
            ),
            _null_db(),
        )
        assert result.x_values() == [2, 3]

    def test_string_equality_is_case_insensitive(self):
        result = DVQExecutor().execute(
            parse_dvq(
                "Visualize BAR SELECT READING_ID , SENSOR FROM readings WHERE SENSOR = 'ALPHA'"
            ),
            _null_db(),
        )
        assert result.x_values() == [1, 4]


class TestEmptyGroupAggregates:
    """Aggregates over empty inputs (satellite checks)."""

    def test_all_aggregates_on_empty_sequences(self):
        assert apply_aggregate("COUNT", []) == 0
        assert apply_aggregate("SUM", []) is None
        assert apply_aggregate("AVG", []) is None
        assert apply_aggregate("MIN", []) is None
        assert apply_aggregate("MAX", []) is None

    def test_aggregates_over_all_null_values(self):
        values = [None, None]
        assert apply_aggregate("COUNT", values) == 0
        assert apply_aggregate("SUM", values) is None
        assert apply_aggregate("AVG", values) is None
        assert apply_aggregate("MIN", values) is None
        assert apply_aggregate("MAX", values) is None

    def test_aggregate_only_query_on_empty_input_yields_no_rows(self, hr_database):
        result = DVQExecutor().execute(
            parse_dvq("Visualize BAR SELECT COUNT(*) FROM employees WHERE SALARY > 99999999"),
            hr_database,
        )
        assert result.rows == []

    def test_aggregate_over_group_of_nulls_yields_none(self):
        result = DVQExecutor().execute(
            parse_dvq(
                "Visualize BAR SELECT SENSOR , SUM(VALUE) FROM readings "
                "WHERE SENSOR = 'Beta' GROUP BY SENSOR"
            ),
            _null_db(),
        )
        assert result.rows == [("Beta", None)]


class TestQualifiedLookup:
    """Case-insensitive qualified column lookup with table aliases."""

    def test_alias_qualified_lookup_is_case_insensitive(self, hr_database):
        result = DVQExecutor().execute(
            parse_dvq(
                "Visualize BAR SELECT T1.last_name , COUNT(T1.LAST_NAME) "
                "FROM employees AS T1 GROUP BY T1.last_name"
            ),
            hr_database,
        )
        assert sum(row[1] for row in result.rows) == len(hr_database.table("employees"))

    def test_table_name_still_resolves_when_aliased(self, hr_database):
        result = DVQExecutor().execute(
            parse_dvq(
                "Visualize BAR SELECT employees.LAST_NAME , COUNT(employees.LAST_NAME) "
                "FROM employees AS T1 GROUP BY employees.LAST_NAME"
            ),
            hr_database,
        )
        assert len(result) >= 1

    def test_join_with_aliases_on_both_sides(self, hr_database):
        result = DVQExecutor().execute(
            parse_dvq(
                "Visualize BAR SELECT T2.DEPARTMENT_NAME , AVG(T1.SALARY) FROM employees AS T1 "
                "JOIN departments AS T2 ON T1.DEPARTMENT_ID = T2.DEPARTMENT_ID "
                "GROUP BY T2.DEPARTMENT_NAME"
            ),
            hr_database,
        )
        assert len(result) >= 1

    def test_unknown_alias_raises(self, hr_database):
        query = parse_dvq(
            "Visualize BAR SELECT T9.LAST_NAME , COUNT(T9.LAST_NAME) "
            "FROM employees AS T1 GROUP BY T9.LAST_NAME"
        )
        with pytest.raises(ExecutionError):
            DVQExecutor().execute(query, hr_database)


class TestExecutionResultAccessors:
    def test_y_values_returns_second_column(self):
        result = ExecutionResult(columns=["x", "y"], rows=[(1, 2), (3, 4)])
        assert result.y_values() == [2, 4]

    def test_y_values_raises_on_single_column_results(self):
        result = ExecutionResult(columns=["x"], rows=[(1,), (2,)])
        with pytest.raises(ValueError, match="no y column"):
            result.y_values()

    def test_x_values_on_single_column_results(self):
        result = ExecutionResult(columns=["x"], rows=[(1,), (2,)])
        assert result.x_values() == [1, 2]
