"""NaN ordering regressions: deterministic rank between numbers and text.

A NaN inside a Python sort-key tuple breaks the total order (every ``<``
involving NaN is False), which historically made ORDER BY, the LIMIT top-k
cut and :func:`~repro.executor.backend.normalize_result` depend on input
order whenever a NaN reached the sort column.  The fix ranks NaN as its own
type between the finite numbers and the strings; these tests pin that rank
and prove input-order independence across the row engines.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.database.database import Database
from repro.database.schema import ColumnType, build_schema
from repro.database.typed import build_typed_column
from repro.dvq import parse_dvq
from repro.executor import ColumnarBackend, InterpreterBackend
from repro.executor.backend import normalize_result
from repro.executor.executor import ExecutionResult
from repro.executor.ordering import (
    canonical_sorted,
    canonical_top_k,
    encode_sort_key,
    legacy_order_key,
    value_sort_key,
)

NAN = float("nan")

#: (READING_ID, VALUE) rows covering every rank: finite numbers, NaN, NULL.
_ROWS = [
    (index + 1, value)
    for index, value in enumerate(
        [7.5, NAN, None, -3, NAN, 0, None, 2.25, float("inf"), -float("inf")]
    )
]


def _database(rows):
    schema = build_schema(
        "nan_db",
        [
            (
                "readings",
                [
                    ("READING_ID", ColumnType.NUMBER, "id"),
                    ("VALUE", ColumnType.NUMBER, "rating"),
                ],
            )
        ],
    )
    database = Database(schema)
    database.table("readings").extend(
        [{"READING_ID": reading_id, "VALUE": value} for reading_id, value in rows]
    )
    return database


def _permutations(rows, count=4):
    """The original rows plus seeded shuffles — IDs stay paired with values."""
    rng = random.Random(17)
    yield list(rows)
    for _ in range(count):
        shuffled = list(rows)
        rng.shuffle(shuffled)
        yield shuffled


class TestValueRanks:
    def test_nan_ranks_after_finite_numbers_and_before_text(self):
        assert value_sort_key(1e300)[0] < value_sort_key(NAN)[0]
        assert value_sort_key(NAN)[0] < value_sort_key("aardvark")[0]
        assert value_sort_key("zz")[0] < value_sort_key(None)[0]

    def test_every_nan_maps_to_the_same_key(self):
        assert value_sort_key(NAN) == value_sort_key(float("nan"))
        assert legacy_order_key(NAN) == legacy_order_key(float("nan"))

    def test_infinities_stay_ordinary_numbers(self):
        assert value_sort_key(float("inf"))[0] == value_sort_key(0)[0]
        assert value_sort_key(-float("inf")) < value_sort_key(0) < value_sort_key(
            float("inf")
        )

    def test_legacy_key_is_a_total_order_over_mixed_values(self):
        values = [2, NAN, None, "zebra", 7.5, NAN, "apple", None, -3, True]
        baseline = [legacy_order_key(v) for v in sorted(values, key=legacy_order_key)]
        rng = random.Random(5)
        for _ in range(10):
            shuffled = list(values)
            rng.shuffle(shuffled)
            resorted = [
                legacy_order_key(v) for v in sorted(shuffled, key=legacy_order_key)
            ]
            assert resorted == baseline


@pytest.mark.parametrize(
    "engine_factory",
    [
        pytest.param(InterpreterBackend, id="interpreter"),
        pytest.param(lambda: ColumnarBackend(optimize=True), id="columnar"),
        pytest.param(
            lambda: ColumnarBackend(optimize=True, vectorize=False),
            id="columnar-python",
        ),
        # morsels of a handful of rows so the partitioned sort / parallel
        # top-k kernels engage even on this ten-row table
        pytest.param(
            lambda: ColumnarBackend(
                optimize=True, cost_based=False, max_workers=4, morsel_size=4
            ),
            id="columnar-parallel",
        ),
        pytest.param(
            lambda: ColumnarBackend(
                optimize=True, cost_based=False, max_workers=2, morsel_size=3
            ),
            id="columnar-parallel-tiny-morsels",
        ),
    ],
)
class TestEngineOrderByWithNaN:
    """Same ID sequence on every engine, for every input permutation."""

    def _ids(self, engine, values, text):
        result = engine.execute(parse_dvq(text), _database(values))
        return [row[0] for row in result.rows]

    def test_order_by_ascending_is_deterministic(self, engine_factory):
        text = "Visualize BAR SELECT READING_ID , VALUE FROM readings ORDER BY VALUE"
        reference = self._ids(InterpreterBackend(), _ROWS, text)
        engine = engine_factory()
        for permutation in _permutations(_ROWS):
            ids = self._ids(engine, permutation, text)
            assert sorted(ids) == sorted(reference)
            assert ids == reference

    def test_top_k_cut_is_deterministic(self, engine_factory):
        text = (
            "Visualize BAR SELECT READING_ID , VALUE FROM readings "
            "ORDER BY VALUE DESC LIMIT 4"
        )
        reference = self._ids(InterpreterBackend(), _ROWS, text)
        engine = engine_factory()
        assert len(reference) == 4
        for permutation in _permutations(_ROWS):
            assert self._ids(engine, permutation, text) == reference


class TestNormalizeResultWithNaN:
    def test_row_order_is_input_order_independent(self):
        query = parse_dvq("Visualize BAR SELECT READING_ID , VALUE FROM readings")
        baseline = None
        rng = random.Random(3)
        for _ in range(6):
            shuffled = list(_ROWS)
            rng.shuffle(shuffled)
            result = normalize_result(
                ExecutionResult(
                    columns=["READING_ID", "VALUE"], rows=shuffled, chart_type="BAR"
                ),
                query,
            )
            ids = [row[0] for row in result.rows]
            if baseline is None:
                baseline = ids
            assert ids == baseline

    def test_nan_survives_normalisation_as_nan(self):
        query = parse_dvq("Visualize BAR SELECT READING_ID , VALUE FROM readings")
        result = normalize_result(
            ExecutionResult(columns=["READING_ID", "VALUE"],
                            rows=[(1, NAN)], chart_type="BAR"),
            query,
        )
        assert math.isnan(result.rows[0][1])


class TestSortKeyEncoding:
    """The uint64 codes must be order-isomorphic to the scalar keys.

    Exact isomorphism — not mere monotonicity — is what the vectorized Sort
    and top-k kernels rely on: ``~code`` as the descending key and the
    pivot-tie candidate set ``code <= pivot`` are only correct when codes tie
    exactly where the scalar keys tie.
    """

    _NUMBERS = [
        7.5, NAN, None, -3, NAN, 0, 0.0, -0.0, 2.25, float("inf"),
        -float("inf"), 1e300, -1e300, 5e-324, -5e-324, 1.0, True, False, None,
    ]

    def test_number_codes_are_isomorphic_to_the_scalar_key(self):
        codes = encode_sort_key(build_typed_column(self._NUMBERS))
        assert codes is not None and codes.dtype == np.uint64
        keys = [value_sort_key(value) for value in self._NUMBERS]
        for i, left in enumerate(keys):
            for j, right in enumerate(keys):
                assert (codes[i] < codes[j]) == (left < right), (i, j)
                assert (codes[i] == codes[j]) == (left == right), (i, j)

    def test_number_rank_order_is_finite_nan_null(self):
        codes = encode_sort_key(build_typed_column([1e308, NAN, None]))
        assert codes[0] < codes[1] < codes[2]
        # +inf is still an ordinary number: below NaN, below NULL
        inf_codes = encode_sort_key(build_typed_column([float("inf"), NAN, None]))
        assert inf_codes[0] < inf_codes[1] < inf_codes[2]

    def test_text_codes_match_canonical_and_legacy_keys(self):
        values = ["Apple", "apple", "Banana", None, "apple", "zebra", "", "Zebra"]
        column = build_typed_column(values)
        canonical = encode_sort_key(column)
        legacy = encode_sort_key(column, legacy=True)
        canonical_keys = [value_sort_key(value) for value in values]
        legacy_keys = [legacy_order_key(value) for value in values]
        for i in range(len(values)):
            for j in range(len(values)):
                assert (canonical[i] < canonical[j]) == (
                    canonical_keys[i] < canonical_keys[j]
                ), (i, j)
                assert (legacy[i] < legacy[j]) == (
                    legacy_keys[i] < legacy_keys[j]
                ), (i, j)

    def test_object_kind_columns_decline(self):
        mixed = build_typed_column([1, "two", 3.0, None])
        assert encode_sort_key(mixed) is None
        assert encode_sort_key(mixed, legacy=True) is None

    def test_bool_bearing_number_columns_decline_only_under_legacy(self):
        # legacy_order_key sorts bools as the text "true"/"false", which the
        # float64 shadow (1.0/0.0) cannot reproduce — so the legacy encoding
        # must decline while the canonical one (bool == number) encodes
        column = build_typed_column([1.0, True, 0.0, False, None])
        assert column.has_bool
        assert encode_sort_key(column, legacy=True) is None
        assert encode_sort_key(column) is not None

    def test_empty_columns_encode_to_empty_codes(self):
        codes = encode_sort_key(build_typed_column([]))
        assert codes is not None and codes.size == 0


class TestCanonicalTopK:
    _ROWS = [
        (index, value)
        for index, value in enumerate(
            [7.5, NAN, None, -3, NAN, 0, 2.25, float("inf"), -float("inf"),
             7.5, None, 2.25]
        )
    ]

    @pytest.mark.parametrize("count", (0, 1, 3, 11, 12, 50))
    @pytest.mark.parametrize("descending", (False, True))
    def test_equals_the_full_sort_prefix(self, count, descending):
        expected = canonical_sorted(self._ROWS, index=1, descending=descending)
        actual = canonical_top_k(self._ROWS, count, index=1, descending=descending)
        assert actual == expected[:count]

    def test_without_an_order_column_it_cuts_the_canonical_order(self):
        expected = canonical_sorted(self._ROWS)
        for count in (1, 5, len(self._ROWS)):
            assert canonical_top_k(self._ROWS, count) == expected[:count]
