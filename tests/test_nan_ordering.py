"""NaN ordering regressions: deterministic rank between numbers and text.

A NaN inside a Python sort-key tuple breaks the total order (every ``<``
involving NaN is False), which historically made ORDER BY, the LIMIT top-k
cut and :func:`~repro.executor.backend.normalize_result` depend on input
order whenever a NaN reached the sort column.  The fix ranks NaN as its own
type between the finite numbers and the strings; these tests pin that rank
and prove input-order independence across the row engines.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.database.database import Database
from repro.database.schema import ColumnType, build_schema
from repro.dvq import parse_dvq
from repro.executor import ColumnarBackend, InterpreterBackend
from repro.executor.backend import normalize_result
from repro.executor.executor import ExecutionResult
from repro.executor.ordering import legacy_order_key, value_sort_key

NAN = float("nan")

#: (READING_ID, VALUE) rows covering every rank: finite numbers, NaN, NULL.
_ROWS = [
    (index + 1, value)
    for index, value in enumerate(
        [7.5, NAN, None, -3, NAN, 0, None, 2.25, float("inf"), -float("inf")]
    )
]


def _database(rows):
    schema = build_schema(
        "nan_db",
        [
            (
                "readings",
                [
                    ("READING_ID", ColumnType.NUMBER, "id"),
                    ("VALUE", ColumnType.NUMBER, "rating"),
                ],
            )
        ],
    )
    database = Database(schema)
    database.table("readings").extend(
        [{"READING_ID": reading_id, "VALUE": value} for reading_id, value in rows]
    )
    return database


def _permutations(rows, count=4):
    """The original rows plus seeded shuffles — IDs stay paired with values."""
    rng = random.Random(17)
    yield list(rows)
    for _ in range(count):
        shuffled = list(rows)
        rng.shuffle(shuffled)
        yield shuffled


class TestValueRanks:
    def test_nan_ranks_after_finite_numbers_and_before_text(self):
        assert value_sort_key(1e300)[0] < value_sort_key(NAN)[0]
        assert value_sort_key(NAN)[0] < value_sort_key("aardvark")[0]
        assert value_sort_key("zz")[0] < value_sort_key(None)[0]

    def test_every_nan_maps_to_the_same_key(self):
        assert value_sort_key(NAN) == value_sort_key(float("nan"))
        assert legacy_order_key(NAN) == legacy_order_key(float("nan"))

    def test_infinities_stay_ordinary_numbers(self):
        assert value_sort_key(float("inf"))[0] == value_sort_key(0)[0]
        assert value_sort_key(-float("inf")) < value_sort_key(0) < value_sort_key(
            float("inf")
        )

    def test_legacy_key_is_a_total_order_over_mixed_values(self):
        values = [2, NAN, None, "zebra", 7.5, NAN, "apple", None, -3, True]
        baseline = [legacy_order_key(v) for v in sorted(values, key=legacy_order_key)]
        rng = random.Random(5)
        for _ in range(10):
            shuffled = list(values)
            rng.shuffle(shuffled)
            resorted = [
                legacy_order_key(v) for v in sorted(shuffled, key=legacy_order_key)
            ]
            assert resorted == baseline


@pytest.mark.parametrize(
    "engine_factory",
    [
        pytest.param(InterpreterBackend, id="interpreter"),
        pytest.param(lambda: ColumnarBackend(optimize=True), id="columnar"),
        pytest.param(
            lambda: ColumnarBackend(optimize=True, vectorize=False),
            id="columnar-python",
        ),
    ],
)
class TestEngineOrderByWithNaN:
    """Same ID sequence on every engine, for every input permutation."""

    def _ids(self, engine, values, text):
        result = engine.execute(parse_dvq(text), _database(values))
        return [row[0] for row in result.rows]

    def test_order_by_ascending_is_deterministic(self, engine_factory):
        text = "Visualize BAR SELECT READING_ID , VALUE FROM readings ORDER BY VALUE"
        reference = self._ids(InterpreterBackend(), _ROWS, text)
        engine = engine_factory()
        for permutation in _permutations(_ROWS):
            ids = self._ids(engine, permutation, text)
            assert sorted(ids) == sorted(reference)
            assert ids == reference

    def test_top_k_cut_is_deterministic(self, engine_factory):
        text = (
            "Visualize BAR SELECT READING_ID , VALUE FROM readings "
            "ORDER BY VALUE DESC LIMIT 4"
        )
        reference = self._ids(InterpreterBackend(), _ROWS, text)
        engine = engine_factory()
        assert len(reference) == 4
        for permutation in _permutations(_ROWS):
            assert self._ids(engine, permutation, text) == reference


class TestNormalizeResultWithNaN:
    def test_row_order_is_input_order_independent(self):
        query = parse_dvq("Visualize BAR SELECT READING_ID , VALUE FROM readings")
        baseline = None
        rng = random.Random(3)
        for _ in range(6):
            shuffled = list(_ROWS)
            rng.shuffle(shuffled)
            result = normalize_result(
                ExecutionResult(
                    columns=["READING_ID", "VALUE"], rows=shuffled, chart_type="BAR"
                ),
                query,
            )
            ids = [row[0] for row in result.rows]
            if baseline is None:
                baseline = ids
            assert ids == baseline

    def test_nan_survives_normalisation_as_nan(self):
        query = parse_dvq("Visualize BAR SELECT READING_ID , VALUE FROM readings")
        result = normalize_result(
            ExecutionResult(columns=["READING_ID", "VALUE"],
                            rows=[(1, NAN)], chart_type="BAR"),
            query,
        )
        assert math.isnan(result.rows[0][1])
