"""Unit tests for the workload subsystem: schema graphs, statistics, generator.

The fuzz-harness and minimizer behaviour (including injected-bug regression
tests) live in ``tests/test_workload_fuzz.py``; this module covers the
building blocks.
"""

from __future__ import annotations

import random

import pytest

from repro.database import DataGenerator
from repro.database.schema import ColumnType
from repro.dvq import parse_dvq, serialize_dvq
from repro.dvq.generate import RandomDVQGenerator
from repro.executor import InterpreterBackend
from repro.workload import (
    SchemaGraphConfig,
    WorkloadGenerator,
    build_schema_graph,
    build_workload_database,
    collect_database_statistics,
    fact_tables,
    tiered_row_counts,
)


class TestSchemaGraph:
    def test_generation_is_deterministic(self):
        config = SchemaGraphConfig(seed=5, table_count=8)
        first = build_schema_graph(config)
        second = build_schema_graph(config)
        assert [t.name for t in first.tables] == [t.name for t in second.tables]
        assert [
            (fk.table, fk.column, fk.ref_table, fk.ref_column)
            for fk in first.foreign_keys
        ] == [
            (fk.table, fk.column, fk.ref_table, fk.ref_column)
            for fk in second.foreign_keys
        ]
        assert {
            (t.name, c.name, c.ctype) for t in first.tables for c in t.columns
        } == {(t.name, c.name, c.ctype) for t in second.tables for c in t.columns}

    def test_different_seeds_give_different_schemas(self):
        one = build_schema_graph(SchemaGraphConfig(seed=1))
        two = build_schema_graph(SchemaGraphConfig(seed=2))
        assert {t.name for t in one.tables} != {t.name for t in two.tables}

    def test_star_topology_has_single_fact(self):
        schema = build_schema_graph(SchemaGraphConfig(seed=3, topology="star", table_count=8))
        facts = fact_tables(schema)
        assert len(facts) == 1
        assert len(schema.foreign_keys) == 7
        assert all(fk.table == facts[0] for fk in schema.foreign_keys)

    def test_chain_topology_is_a_path(self):
        schema = build_schema_graph(SchemaGraphConfig(seed=3, topology="chain", table_count=5))
        assert len(schema.foreign_keys) == 4
        sources = [fk.table for fk in schema.foreign_keys]
        assert len(set(sources)) == 4  # every link has a distinct source

    def test_snowflake_is_connected_with_n_minus_1_edges(self):
        schema = build_schema_graph(
            SchemaGraphConfig(seed=11, topology="snowflake", table_count=10)
        )
        assert len(schema.foreign_keys) == 9
        graph = schema.join_graph()
        import networkx

        assert networkx.is_connected(graph.to_undirected(as_view=False))

    @pytest.mark.parametrize("topology", ["star", "snowflake", "chain"])
    def test_every_table_has_text_and_number_attributes(self, topology):
        schema = build_schema_graph(
            SchemaGraphConfig(seed=9, topology=topology, table_count=8)
        )
        for table in schema.tables:
            ctypes = {c.ctype for c in table.columns if not c.is_primary}
            assert ColumnType.TEXT in ctypes, table.name
            assert ColumnType.NUMBER in ctypes, table.name
            assert table.columns[0].is_primary
            assert table.columns[0].name.endswith("_ID")

    def test_foreign_key_columns_mirror_referenced_primary_key(self):
        schema = build_schema_graph(SchemaGraphConfig(seed=4, table_count=8))
        for fk in schema.foreign_keys:
            assert fk.column == fk.ref_column
            ref = schema.table(fk.ref_table)
            assert ref.columns[0].name == fk.ref_column

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchemaGraphConfig(table_count=1)
        with pytest.raises(ValueError):
            SchemaGraphConfig(topology="mesh")
        with pytest.raises(ValueError):
            SchemaGraphConfig(min_columns=5, max_columns=3)

    def test_tiered_row_counts_put_bulk_on_facts(self):
        schema = build_schema_graph(SchemaGraphConfig(seed=6, topology="star", table_count=8))
        counts = tiered_row_counts(schema, 50_000)
        fact = fact_tables(schema)[0]
        assert counts[fact] > 10 * max(
            count for name, count in counts.items() if name != fact
        )
        assert all(count >= 1 for count in counts.values())

    def test_build_workload_database_round_numbers(self):
        database = build_workload_database(
            SchemaGraphConfig(seed=6, table_count=8), total_rows=5_000
        )
        total = sum(len(t.rows) for t in database.tables())
        assert 0.8 * 5_000 <= total <= 1.2 * 5_000
        assert len(database.schema.tables) == 8


class TestDataGeneratorKnobs:
    def _schema(self):
        return build_schema_graph(SchemaGraphConfig(seed=2, table_count=4))

    def test_default_knobs_preserve_historical_stream(self):
        schema = self._schema()
        baseline = DataGenerator(seed=5, rows_per_table=30).populate(schema)
        again = DataGenerator(seed=5, rows_per_table=30).populate(schema)
        for table in schema.tables:
            assert baseline.table(table.name).rows == again.table(table.name).rows

    def test_null_fraction_spares_keys(self):
        schema = self._schema()
        database = DataGenerator(seed=5, rows_per_table=200, null_fraction=0.3).populate(schema)
        protected = {(fk.table.lower(), fk.column.lower()) for fk in schema.foreign_keys}
        protected |= {
            (fk.ref_table.lower(), fk.ref_column.lower()) for fk in schema.foreign_keys
        }
        saw_null = False
        for table in database.tables():
            for column in table.schema.columns:
                values = table.column_values(column.name)
                if column.is_primary or (table.name.lower(), column.name.lower()) in protected:
                    assert all(v is not None for v in values), column.name
                else:
                    saw_null = saw_null or any(v is None for v in values)
        assert saw_null

    def test_skew_concentrates_foreign_keys(self):
        schema = self._schema()
        skewed = DataGenerator(seed=5, rows_per_table=500, skew=0.9).populate(schema)
        uniform = DataGenerator(seed=5, rows_per_table=500).populate(schema)
        fk = schema.foreign_keys[0]

        def top_share(database):
            values = database.table(fk.table).column_values(fk.column)
            counts = sorted(
                (values.count(v) for v in set(values)), reverse=True
            )
            return sum(counts[:3]) / len(values)

        assert top_share(skewed) > top_share(uniform)

    def test_rows_by_table_overrides_counts(self):
        schema = self._schema()
        name = schema.tables[0].name
        database = DataGenerator(seed=1).populate(
            schema, rows_by_table={name.upper(): 123}
        )
        assert len(database.table(name).rows) == 123
        assert len(database.table(schema.tables[1].name).rows) == 40


class TestStatistics:
    @pytest.fixture(scope="class")
    def database(self):
        return build_workload_database(
            SchemaGraphConfig(seed=8, table_count=5), total_rows=2_000
        )

    def test_row_and_null_counts(self, database):
        stats = collect_database_statistics(database)
        for table in database.tables():
            table_stats = stats[table.name.lower()]
            assert table_stats.row_count == len(table.rows)
            for column in table.schema.columns:
                cstats = table_stats.column(column.name)
                values = table.column_values(column.name)
                assert cstats.null_count == sum(1 for v in values if v is None)
                assert cstats.ndv == len({v for v in values if v is not None})

    def test_histogram_edges_are_sorted_and_bounded(self, database):
        stats = collect_database_statistics(database)
        for table_stats in stats.values():
            for cstats in table_stats.columns.values():
                if len(cstats.histogram) < 2:
                    continue
                edges = list(cstats.histogram)
                assert edges == sorted(edges)
                assert edges[0] == cstats.minimum
                assert edges[-1] == cstats.maximum

    def test_most_common_values_actually_occur(self, database):
        stats = collect_database_statistics(database)
        table = database.tables()[0]
        table_stats = stats[table.name.lower()]
        for column in table.schema.columns:
            values = table.column_values(column.name)
            for value, count in table_stats.column(column.name).most_common:
                assert values.count(value) == count


class TestWorkloadGenerator:
    @pytest.fixture(scope="class")
    def database(self):
        return build_workload_database(
            SchemaGraphConfig(seed=13, table_count=8), total_rows=4_000
        )

    def test_queries_roundtrip_and_execute(self, database):
        generator = WorkloadGenerator(seed=21)
        interpreter = InterpreterBackend()
        for query in generator.generate_many(database, 60):
            text = serialize_dvq(query)
            assert serialize_dvq(parse_dvq(text)) == text
            assert interpreter.explain_failure(query, database).ok, text

    def test_generation_is_seed_deterministic(self, database):
        first = [
            serialize_dvq(q)
            for q in WorkloadGenerator(seed=2).generate_many(database, 25)
        ]
        second = [
            serialize_dvq(q)
            for q in WorkloadGenerator(seed=2).generate_many(database, 25)
        ]
        assert first == second

    def test_join_walks_respect_cost_budget(self, database):
        stats = WorkloadGenerator(seed=0).statistics(database)
        rows = {name: s.row_count for name, s in stats.items()}
        budget = 500_000
        generator = WorkloadGenerator(seed=4, max_joins=3, join_probability=0.9,
                                      max_join_cost=budget)
        saw_join = False
        for query in generator.generate_many(database, 80):
            if query.joins:
                saw_join = True
                first = query.joins[0]
                assert rows[query.table.lower()] * rows[first.table.lower()] <= budget
        assert saw_join
        # a budget below every feasible edge suppresses joins entirely
        strict = WorkloadGenerator(seed=4, max_joins=3, join_probability=0.9,
                                   max_join_cost=10)
        assert all(not q.joins for q in strict.generate_many(database, 40))

    def test_multi_table_scopes_qualify_every_reference(self, database):
        generator = WorkloadGenerator(seed=7, max_joins=3, join_probability=0.9)
        checked = 0
        for query in generator.generate_many(database, 80):
            if not query.joins:
                continue
            checked += 1
            for ref in query.referenced_columns():
                assert ref.table or ref.column == "*", serialize_dvq(query)
        assert checked >= 10

    def test_literal_pools_are_bounded(self, database):
        generator = WorkloadGenerator(seed=1, in_list_limit=6)
        table = database.tables()[0]
        scoped_columns = generator._scope_columns(database.schema, table.name, None)
        for scoped in scoped_columns:
            pool = generator._literal_pool(database, scoped)
            assert len(pool) <= 6
            assert all(value is not None for value in pool)

    def test_group_keys_have_low_cardinality(self, database):
        generator = WorkloadGenerator(seed=3, group_key_ndv_limit=20)
        stats = generator.statistics(database)
        for query in generator.generate_many(database, 60):
            if not query.group_by or query.bin is not None:
                continue
            key = query.group_by[0]
            for table_stats in stats.values():
                if key.column.lower() in table_stats.columns:
                    cstats = table_stats.column(key.column)
                    if cstats.ctype in (ColumnType.TEXT, ColumnType.BOOLEAN):
                        assert cstats.ndv <= 20, serialize_dvq(query)


class TestPortableSubsetToggle:
    @pytest.fixture(scope="class")
    def database(self):
        return build_workload_database(
            SchemaGraphConfig(seed=13, table_count=6), total_rows=1_500
        )

    def test_portable_mode_never_corrupts(self, database):
        generator = RandomDVQGenerator(seed=5, portable_subset=True)
        interpreter = InterpreterBackend()
        for query in generator.generate_many(database, 40):
            assert interpreter.explain_failure(query, database).ok

    def test_non_portable_mode_generates_rejected_queries(self, database):
        generator = WorkloadGenerator(
            seed=5, portable_subset=False, corruption_probability=0.5
        )
        interpreter = InterpreterBackend()
        categories = set()
        for query in generator.generate_many(database, 80):
            categories.add(interpreter.explain_failure(query, database).category)
        assert "ok" in categories
        assert categories & {"missing_table", "missing_column"}

    def test_corrupted_queries_still_roundtrip(self, database):
        generator = WorkloadGenerator(
            seed=5, portable_subset=False, corruption_probability=1.0
        )
        for query in generator.generate_many(database, 30):
            text = serialize_dvq(query)
            assert serialize_dvq(parse_dvq(text)) == text

    def test_engines_agree_on_corruption_categories(self, database):
        from repro.executor import ColumnarBackend
        from repro.sql import SQLiteBackend

        generator = WorkloadGenerator(
            seed=5, portable_subset=False, corruption_probability=1.0
        )
        interpreter = InterpreterBackend()
        engines = [SQLiteBackend(), ColumnarBackend(optimize=True),
                   ColumnarBackend(optimize=False)]
        for query in generator.generate_many(database, 25):
            expected = interpreter.explain_failure(query, database)
            for engine in engines:
                actual = engine.explain_failure(query, database)
                assert actual.category == expected.category, serialize_dvq(query)
                assert actual.missing == expected.missing
