"""Tests for the evaluation metrics and reporting."""

import pytest

from repro.evaluation import (
    compare_queries,
    evaluate_predictions,
    format_accuracy_table,
    format_markdown_table,
)
from repro.evaluation.metrics import EvaluationResult, evaluate_by_group

GOLD = "Visualize BAR SELECT JOB_ID , AVG(MANAGER_ID) FROM employees GROUP BY JOB_ID ORDER BY JOB_ID ASC"


class TestCompareQueries:
    def test_exact_match(self):
        match = compare_queries(GOLD, GOLD)
        assert match.vis and match.axis and match.data and match.overall

    def test_chart_type_mismatch_only_affects_vis(self):
        match = compare_queries(GOLD.replace("BAR", "PIE"), GOLD)
        assert not match.vis and match.axis and match.data

    def test_axis_mismatch(self):
        match = compare_queries(GOLD.replace("AVG", "SUM"), GOLD)
        assert match.vis and not match.axis

    def test_data_mismatch_on_order(self):
        match = compare_queries(GOLD.replace("ASC", "DESC"), GOLD)
        assert match.vis and match.axis and not match.data

    def test_case_differences_do_not_matter(self):
        match = compare_queries(GOLD.lower().replace("visualize", "Visualize"), GOLD)
        assert match.overall

    def test_unparseable_prediction_is_wrong(self):
        match = compare_queries("completely broken output", GOLD)
        assert not match.vis and not match.overall


class TestAggregation:
    def test_accuracies(self):
        pairs = [
            (GOLD, GOLD),
            (GOLD.replace("BAR", "PIE"), GOLD),
            (GOLD.replace("ASC", "DESC"), GOLD),
            (GOLD, GOLD),
        ]
        result = evaluate_predictions(pairs)
        assert result.total == 4
        assert result.vis_accuracy == pytest.approx(0.75)
        assert result.overall_accuracy == pytest.approx(0.5)

    def test_empty_set(self):
        result = evaluate_predictions([])
        assert result.overall_accuracy == 0.0 and result.total == 0

    def test_as_dict_keys(self):
        result = evaluate_predictions([(GOLD, GOLD)])
        assert set(result.as_dict()) == {
            "vis_accuracy", "data_accuracy", "axis_accuracy", "overall_accuracy", "total",
        }

    def test_evaluate_by_group(self):
        records = [("easy", GOLD, GOLD), ("hard", GOLD.replace("BAR", "PIE"), GOLD)]
        grouped = evaluate_by_group(records)
        assert grouped["easy"].overall_accuracy == 1.0
        assert grouped["hard"].overall_accuracy == 0.0


class TestReport:
    results = {
        "RGVisNet": EvaluationResult(total=100, vis_correct=96, axis_correct=70, data_correct=53, overall_correct=45),
        "GRED (Ours)": EvaluationResult(total=100, vis_correct=97, axis_correct=88, data_correct=61, overall_correct=59),
    }

    def test_fixed_width_table_contains_models_and_columns(self):
        table = format_accuracy_table(self.results, title="Results in nvBench-Rob_nlq")
        assert "RGVisNet" in table and "GRED (Ours)" in table
        assert "Vis Acc." in table and "Acc." in table

    def test_markdown_table_has_rows(self):
        table = format_markdown_table(self.results)
        assert table.count("|") > 10
        assert "59.00%" in table
