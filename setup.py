"""Setuptools entry point.

Kept as a classic ``setup.py`` (rather than PEP 517 metadata) so editable
installs work in offline environments that lack the ``wheel`` package.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Towards Robustness of Text-to-Visualization Translation "
        "against Lexical and Phrasal Variability' (nvBench-Rob + GRED)"
    ),
    author="Reproduction Authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "networkx"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
